//! Cycle-accurate validation and functional replay of schedules.
//!
//! The paper evaluates schedules analytically; this simulator is the
//! reproduction's safety net. Given a graph, an [`ArchSpec`] and a
//! [`Schedule`], it enforces *every* architectural rule the CP model is
//! supposed to respect:
//!
//! - precedence and exact data-availability times ((1) and (4));
//! - lane capacity and one-configuration-per-cycle ((2) and (3));
//! - unit-capacity accelerator and index/merge units;
//! - memory ports, read/write budgets and the page/line rule (§3.4),
//!   with reads at issue and writes at write-back;
//! - slot-lifetime exclusivity ((10)/(11)) — verified twice: as interval
//!   disjointness *and* by replaying memory contents, so a stale read
//!   (an op consuming a slot that another datum has overwritten) is
//!   caught even if the lifetime bookkeeping were wrong;
//! - functional correctness: every operation is executed through
//!   [`eit_ir::sem::apply`] and the memory replay checks the values flow
//!   through the slots the allocation says they do.
//!
//! Modelling choices (documented in DESIGN.md): the index/merge unit and
//! the scalar accelerator access data through dedicated paths, so only
//! vector-core accesses count against the memory ports; graph inputs are
//! pre-loaded before cycle 0.

use crate::code::ConfigStream;
use crate::memory::{check_access, Geometry, VectorMemory};
use crate::schedule::Schedule;
use crate::spec::ArchSpec;
use eit_ir::sem::{apply, Value};
use eit_ir::{Category, Graph, NodeId, OpClass, VectorConfig};
use std::collections::HashMap;
use std::fmt;

/// One broken rule found during validation/replay.
#[derive(Clone, Debug, PartialEq)]
pub enum Violation {
    NegativeStart {
        node: NodeId,
    },
    Precedence {
        from: NodeId,
        to: NodeId,
    },
    DataStart {
        op: NodeId,
        data: NodeId,
    },
    LaneOverflow {
        cycle: i32,
        used: u32,
    },
    ConfigConflict {
        cycle: i32,
    },
    /// Two consecutive vector-core issue cycles carry different
    /// configurations without the reconfiguration stall between them
    /// (overlapped-execution rule: the core switches only at bundle
    /// boundaries and each switch costs `reconfig_cost` idle cycles).
    ReconfigStall {
        prev_cycle: i32,
        cycle: i32,
        gap: i32,
        need: i32,
    },
    AcceleratorOverlap {
        a: NodeId,
        b: NodeId,
    },
    IndexMergeOverlap {
        a: NodeId,
        b: NodeId,
    },
    Memory {
        cycle: i32,
        detail: crate::memory::AccessViolation,
    },
    MissingSlot {
        data: NodeId,
    },
    SlotOutOfRange {
        data: NodeId,
        slot: u32,
    },
    SlotLifetimeOverlap {
        a: NodeId,
        b: NodeId,
        slot: u32,
    },
    StaleRead {
        reader: NodeId,
        data: NodeId,
        slot: u32,
        found: Option<NodeId>,
    },
    MissingInput {
        data: NodeId,
    },
    Semantic {
        op: NodeId,
        error: String,
    },
    /// The schedule (or the graph it claims to describe) is structurally
    /// broken — wrong vector lengths, a cyclic graph, an op without an
    /// opcode. Reported instead of panicking so corrupt input degrades to
    /// a diagnostic.
    MalformedSchedule {
        detail: String,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Per-unit busy-cycle breakdown.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct UnitUtilization {
    /// Vector-core lane utilization (used lane-cycles / available).
    pub vector: f64,
    /// Scalar-accelerator busy fraction.
    pub accelerator: f64,
    /// Index/merge-unit busy fraction.
    pub index_merge: f64,
}

/// Activity counters beyond the headline utilization numbers, computed
/// from the configuration stream: occupancy histograms, per-bank traffic,
/// port-pressure peaks and the reconfiguration timeline.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SimCounters {
    /// `lane_histogram[k]` = cycles issuing exactly `k` lane-worths of
    /// vector work (a matrix op counts as the spec's matrix width); index
    /// runs `0..=n_lanes`.
    pub lane_histogram: Vec<u64>,
    /// Physical (broadcast-deduplicated) reads served per bank over the
    /// whole run.
    pub bank_reads: Vec<u64>,
    /// Writes landed per bank over the whole run.
    pub bank_writes: Vec<u64>,
    /// Highest simultaneous read count, and the first cycle it occurs.
    pub peak_reads: u32,
    pub peak_reads_cycle: i32,
    /// Highest simultaneous write count, and the first cycle it occurs.
    pub peak_writes: u32,
    pub peak_writes_cycle: i32,
    /// Every configuration load `(cycle, config)`, the initial one
    /// included — the timeline behind [`SimReport::config_loads`].
    pub reconfig_timeline: Vec<(i32, VectorConfig)>,
}

impl SimCounters {
    /// Tally the stream. Reads are broadcast-deduplicated per cycle to
    /// match the port rules ([`check_access`] sees the same sets).
    pub fn from_stream(cs: &ConfigStream, g: &Graph, spec: &ArchSpec) -> Self {
        let geo = Geometry::of(spec);
        let mut c = SimCounters {
            lane_histogram: vec![0; spec.n_lanes as usize + 1],
            bank_reads: vec![0; spec.n_banks as usize],
            bank_writes: vec![0; spec.n_banks as usize],
            ..Default::default()
        };
        let mut prev_cfg: Option<VectorConfig> = None;
        for (t, cyc) in cs.cycles.iter().enumerate() {
            let t = t as i32;
            let lanes: u32 = cyc
                .vector_ops
                .iter()
                .map(|&op| {
                    if g.category(op) == Category::MatrixOp {
                        spec.matrix_lanes()
                    } else {
                        1
                    }
                })
                .sum();
            let k = (lanes as usize).min(c.lane_histogram.len() - 1);
            c.lane_histogram[k] += 1;

            let mut slots: Vec<u32> = cyc.reads.iter().map(|&(_, s)| s).collect();
            slots.sort_unstable();
            slots.dedup();
            for &s in &slots {
                c.bank_reads[geo.bank(s) as usize] += 1;
            }
            if slots.len() as u32 > c.peak_reads {
                c.peak_reads = slots.len() as u32;
                c.peak_reads_cycle = t;
            }
            for &(_, s) in &cyc.writes {
                c.bank_writes[geo.bank(s) as usize] += 1;
            }
            if cyc.writes.len() as u32 > c.peak_writes {
                c.peak_writes = cyc.writes.len() as u32;
                c.peak_writes_cycle = t;
            }

            if let Some(cfg) = cyc.vector_config {
                if prev_cfg != Some(cfg) {
                    c.reconfig_timeline.push((t, cfg));
                }
                prev_cfg = Some(cfg);
            }
        }
        c
    }
}

/// Outcome of [`simulate`].
#[derive(Debug)]
pub struct SimReport {
    pub violations: Vec<Violation>,
    /// Value of every data node (present when inputs were supplied and
    /// evaluation succeeded).
    pub values: HashMap<NodeId, Value>,
    pub makespan: i32,
    pub lane_cycles: u64,
    pub utilization: f64,
    pub units: UnitUtilization,
    pub reconfig_switches: usize,
    pub config_loads: usize,
    pub counters: SimCounters,
}

impl SimReport {
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

fn on_vector_core(cat: Category) -> bool {
    matches!(cat, Category::VectorOp | Category::MatrixOp)
}

/// Shape check shared by validation and simulation: a schedule whose
/// vectors do not cover the graph cannot be indexed safely. Returns the
/// violations (empty = well-shaped).
pub(crate) fn check_shape(g: &Graph, sched: &Schedule) -> Vec<Violation> {
    let mut out = Vec::new();
    if sched.start.len() != g.len() || sched.slot.len() != g.len() {
        out.push(Violation::MalformedSchedule {
            detail: format!(
                "schedule covers {} starts / {} slots for a {}-node graph",
                sched.start.len(),
                sched.slot.len(),
                g.len()
            ),
        });
    }
    out
}

/// Structural validation only (no values needed).
pub fn validate_structure(g: &Graph, spec: &ArchSpec, sched: &Schedule) -> Vec<Violation> {
    validate_structure_with(g, spec, sched, true)
}

/// Structural validation with the memory checks optionally disabled —
/// used for baselines that the paper explicitly describes as "scheduled
/// without memory allocation" (Table 2's manual column) and for modulo
/// schedules, where the paper assumes sufficient memory.
pub fn validate_structure_with(
    g: &Graph,
    spec: &ArchSpec,
    sched: &Schedule,
    check_memory: bool,
) -> Vec<Violation> {
    let mut out = check_shape(g, sched);
    if !out.is_empty() {
        return out;
    }
    if let Err(e) = spec.validate() {
        out.push(Violation::MalformedSchedule {
            detail: format!("invalid ArchSpec: {e}"),
        });
        return out;
    }

    let latency = |n: NodeId| spec.latency(&g.node(n).kind);
    let duration = |n: NodeId| spec.duration(&g.node(n).kind);

    // Starts are non-negative.
    for n in g.ids() {
        if sched.start_of(n) < 0 {
            out.push(Violation::NegativeStart { node: n });
        }
    }

    // (1): s_i + l_i ≤ s_j on every edge; (4): data starts exactly at
    // producer completion.
    for (from, to) in g.edges() {
        if sched.start_of(from) + latency(from) > sched.start_of(to) {
            out.push(Violation::Precedence { from, to });
        }
        if g.category(from).is_op() && g.category(to).is_data() {
            let expect = sched.start_of(from) + latency(from);
            if sched.start_of(to) != expect {
                out.push(Violation::DataStart { op: from, data: to });
            }
        }
    }

    // (2)/(3): lane capacity and configuration uniqueness per cycle.
    let mut by_cycle: HashMap<i32, Vec<NodeId>> = HashMap::new();
    for n in g.ids() {
        if on_vector_core(g.category(n)) {
            by_cycle.entry(sched.start_of(n)).or_default().push(n);
        }
    }
    for (&cycle, ops) in &by_cycle {
        let used: u32 = ops
            .iter()
            .map(|&o| {
                if g.category(o) == Category::MatrixOp {
                    spec.matrix_lanes()
                } else {
                    1
                }
            })
            .sum();
        if used > spec.n_lanes {
            out.push(Violation::LaneOverflow { cycle, used });
        }
        // A node can only reach here with `Category::{Vector,Matrix}Op`,
        // which guarantees a vector-core opcode with a configuration — but
        // corrupt input must degrade to a diagnostic, never a panic.
        let mut cfgs = Vec::with_capacity(ops.len());
        for &o in ops {
            match g.opcode(o).and_then(|op| op.config()) {
                Some(c) => cfgs.push(c),
                None => out.push(Violation::MalformedSchedule {
                    detail: format!("node {o:?} co-issued on the vector core has no configuration"),
                }),
            }
        }
        if cfgs.windows(2).any(|w| w[0] != w[1]) {
            out.push(Violation::ConfigConflict { cycle });
        }
    }

    // Capacity-limited resources beyond the vector core: one sorted
    // interval sweep per unit of the table, with a width-aware active set
    // so replicated units (`count > 1`) are honoured. Ops occupy their
    // unit for their duration (iterative accelerator ops several cycles).
    for unit in &spec.units.units {
        let classes: Vec<OpClass> = unit.ops.iter().map(|o| o.class).collect();
        if classes.contains(&OpClass::Vector) || classes.contains(&OpClass::Matrix) {
            continue; // the lane rule above covers the vector core
        }
        let is_accel = classes
            .iter()
            .any(|c| matches!(c, OpClass::ScalarIterative | OpClass::ScalarSimple));
        let mut items: Vec<(NodeId, i32, i32, u32)> = g
            .ids()
            .filter_map(|n| {
                let c = OpClass::of(&g.node(n).kind)?;
                if !classes.contains(&c) {
                    return None;
                }
                let w = spec.units.class_width(c).unwrap_or(1);
                let s = sched.start_of(n);
                Some((n, s, s + duration(n).max(1), w))
            })
            .collect();
        items.sort_by_key(|&(n, s, _, _)| (s, n.idx()));
        let mut active: Vec<(NodeId, i32, u32)> = Vec::new(); // (node, end, width)
        for (n, s, e, w) in items {
            active.retain(|&(_, end, _)| end > s);
            let used: u32 = active.iter().map(|&(_, _, w)| w).sum();
            if used + w > unit.count {
                let prev = active[0].0;
                out.push(if is_accel {
                    Violation::AcceleratorOverlap { a: prev, b: n }
                } else {
                    Violation::IndexMergeOverlap { a: prev, b: n }
                });
            } else {
                active.push((n, e, w));
            }
        }
    }

    if !check_memory {
        return out;
    }

    // Memory: every vector datum needs an in-range slot.
    let n_slots = spec.n_slots();
    for n in g.ids() {
        if g.category(n) == Category::VectorData {
            match sched.slot_of(n) {
                None => out.push(Violation::MissingSlot { data: n }),
                Some(s) if s >= n_slots => out.push(Violation::SlotOutOfRange { data: n, slot: s }),
                _ => {}
            }
        }
    }

    // Slot lifetime exclusivity (10)/(11).
    let vdata: Vec<NodeId> = g
        .ids()
        .filter(|&n| g.category(n) == Category::VectorData)
        .collect();
    for (i, &a) in vdata.iter().enumerate() {
        for &b in &vdata[i + 1..] {
            if let (Some(sa), Some(sb)) = (sched.slot_of(a), sched.slot_of(b)) {
                if sa == sb {
                    let (a0, a1) = sched.lifetime(g, a);
                    let (b0, b1) = sched.lifetime(g, b);
                    if a0 < b1 && b0 < a1 {
                        out.push(Violation::SlotLifetimeOverlap { a, b, slot: sa });
                    }
                }
            }
        }
    }

    // Port and page/line checks per cycle (vector-core accesses only).
    let mut reads_at: HashMap<i32, Vec<u32>> = HashMap::new();
    let mut writes_at: HashMap<i32, Vec<u32>> = HashMap::new();
    for n in g.ids() {
        if !on_vector_core(g.category(n)) {
            continue;
        }
        let t = sched.start_of(n);
        for &d in g.preds(n) {
            if g.category(d) == Category::VectorData {
                if let Some(s) = sched.slot_of(d) {
                    reads_at.entry(t).or_default().push(s);
                }
            }
        }
        let wb = t + latency(n);
        for &d in g.succs(n) {
            if g.category(d) == Category::VectorData {
                if let Some(s) = sched.slot_of(d) {
                    writes_at.entry(wb).or_default().push(s);
                }
            }
        }
    }
    let mut cycles: Vec<i32> = reads_at.keys().chain(writes_at.keys()).copied().collect();
    cycles.sort_unstable();
    cycles.dedup();
    for t in cycles {
        let empty = Vec::new();
        // Two operands in the same slot are one physical (broadcast) read.
        let mut r = reads_at.get(&t).unwrap_or(&empty).clone();
        r.sort_unstable();
        r.dedup();
        let w = writes_at.get(&t).unwrap_or(&empty);
        for v in check_access(spec, &r, w) {
            out.push(Violation::Memory {
                cycle: t,
                detail: v,
            });
        }
    }

    out
}

/// Full simulation: structural validation plus functional memory replay.
pub fn simulate(
    g: &Graph,
    spec: &ArchSpec,
    sched: &Schedule,
    inputs: &HashMap<NodeId, Value>,
) -> SimReport {
    let mut violations = validate_structure(g, spec, sched);

    // A schedule that cannot be indexed (or a cyclic graph) cannot be
    // replayed; report what validation found and stop before any of the
    // phases below would panic.
    let order = if check_shape(g, sched).is_empty() {
        g.topo_order()
    } else {
        None
    };
    let Some(order) = order else {
        if !violations
            .iter()
            .any(|v| matches!(v, Violation::MalformedSchedule { .. }))
        {
            violations.push(Violation::MalformedSchedule {
                detail: "cyclic graph: no topological order for functional replay".into(),
            });
        }
        return SimReport {
            violations,
            values: HashMap::new(),
            makespan: sched.makespan,
            lane_cycles: 0,
            utilization: 0.0,
            units: UnitUtilization::default(),
            reconfig_switches: 0,
            config_loads: 0,
            counters: SimCounters::default(),
        };
    };

    // Phase 1: functional evaluation in topological order.
    let mut values: HashMap<NodeId, Value> = HashMap::new();
    'eval: for &n in &order {
        match g.category(n) {
            c if c.is_data() => {
                if g.producer(n).is_none() {
                    match inputs.get(&n) {
                        Some(&v) => {
                            values.insert(n, v);
                        }
                        None => {
                            violations.push(Violation::MissingInput { data: n });
                        }
                    }
                }
                // Produced data gets its value when its producer runs.
            }
            _ => {
                let mut ins = Vec::with_capacity(g.preds(n).len());
                for &p in g.preds(n) {
                    match values.get(&p) {
                        Some(&v) => ins.push(v),
                        None => continue 'eval, // upstream input missing
                    }
                }
                let Some(op) = g.opcode(n) else {
                    violations.push(Violation::MalformedSchedule {
                        detail: format!("op node {n:?} has no opcode"),
                    });
                    continue 'eval;
                };
                match apply(&op, &ins) {
                    Ok(outs) => {
                        for (&d, v) in g.succs(n).iter().zip(outs) {
                            values.insert(d, v);
                        }
                    }
                    Err(e) => violations.push(Violation::Semantic {
                        op: n,
                        error: e.to_string(),
                    }),
                }
            }
        }
    }

    // Phase 2: memory replay. Writes land at the producer's write-back
    // cycle; application inputs are pre-loaded. Reads (vector-core issue
    // and index-unit reads) must find the expected datum.
    let mut mem = VectorMemory::new(spec.n_slots());
    #[derive(Clone, Copy)]
    enum Ev {
        Read {
            reader: NodeId,
            data: NodeId,
            slot: u32,
        },
        Write {
            data: NodeId,
            slot: u32,
        },
    }
    let mut events: Vec<(i32, u8, Ev)> = Vec::new(); // (cycle, order: read=0, write=1)
    for n in g.ids() {
        match g.category(n) {
            Category::VectorData => {
                let Some(slot) = sched.slot_of(n) else {
                    continue;
                };
                if slot >= spec.n_slots() {
                    continue;
                }
                match g.producer(n) {
                    None => events.push((-1, 1, Ev::Write { data: n, slot })),
                    Some(p) => {
                        // Write-back lands at the datum's start cycle; reads
                        // in the same cycle see the previous occupant.
                        let wb = sched.start_of(p) + spec.latency(&g.node(p).kind);
                        events.push((wb, 1, Ev::Write { data: n, slot }));
                    }
                }
            }
            c if c.is_op() => {
                for &d in g.preds(n) {
                    if g.category(d) == Category::VectorData {
                        if let Some(slot) = sched.slot_of(d) {
                            if slot < spec.n_slots() {
                                events.push((
                                    sched.start_of(n),
                                    0,
                                    Ev::Read {
                                        reader: n,
                                        data: d,
                                        slot,
                                    },
                                ));
                            }
                        }
                    }
                }
            }
            _ => {}
        }
    }
    // Per cycle: reads see the pre-write memory state (so a slot re-used
    // by a datum *starting* this cycle still serves its old occupant's
    // last read), except that a read of a datum *written this very cycle*
    // is satisfied by pipeline forwarding — the paper's constraint (4)
    // allows a consumer to start exactly at the datum's start cycle.
    events.sort_by_key(|&(t, ord, _)| (t, ord));
    let mut i = 0;
    while i < events.len() {
        let cycle = events[i].0;
        let mut j = i;
        while j < events.len() && events[j].0 == cycle {
            j += 1;
        }
        let this_cycle = &events[i..j];
        // Forwarding set: (slot, datum) written this cycle.
        let forwarded: Vec<(u32, NodeId)> = this_cycle
            .iter()
            .filter_map(|&(_, _, ev)| match ev {
                Ev::Write { data, slot } => Some((slot, data)),
                _ => None,
            })
            .collect();
        for &(_, _, ev) in this_cycle {
            if let Ev::Read { reader, data, slot } = ev {
                let ok = mem.read(slot, data).is_ok() || forwarded.contains(&(slot, data));
                if !ok {
                    let found = mem.read(slot, data).err().flatten();
                    violations.push(Violation::StaleRead {
                        reader,
                        data,
                        slot,
                        found,
                    });
                }
            }
        }
        for &(_, _, ev) in this_cycle {
            if let Ev::Write { data, slot } = ev {
                let v = values
                    .get(&data)
                    .copied()
                    .unwrap_or(Value::S(eit_ir::Cplx::ZERO));
                mem.write(slot, data, v);
            }
        }
        i = j;
    }

    // Metrics.
    let cs = ConfigStream::from_schedule(g, spec, sched);
    let counters = SimCounters::from_stream(&cs, g, spec);
    let lane_cycles = cs.lane_cycles_used(g, spec);
    let total = (sched.makespan + 1).max(1) as f64;
    let mut accel_busy = 0i64;
    let mut im_busy = 0i64;
    for n in g.ids() {
        match g.category(n) {
            Category::ScalarOp => accel_busy += spec.duration(&g.node(n).kind) as i64,
            Category::Index | Category::Merge => im_busy += spec.duration(&g.node(n).kind) as i64,
            _ => {}
        }
    }
    SimReport {
        utilization: cs.utilization(g, spec),
        units: UnitUtilization {
            vector: cs.utilization(g, spec),
            accelerator: (accel_busy as f64 / total).min(1.0),
            index_merge: (im_busy as f64 / total).min(1.0),
        },
        reconfig_switches: cs.reconfig_switches(),
        config_loads: cs.config_loads(),
        lane_cycles,
        makespan: sched.makespan,
        violations,
        values,
        counters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eit_ir::{CoreOp, Cplx, DataKind, Opcode};

    /// a, b → add → out; a hand-built legal schedule.
    fn tiny() -> (Graph, Schedule, HashMap<NodeId, Value>) {
        let mut g = Graph::new("t");
        let a = g.add_data(DataKind::Vector, "a");
        let b = g.add_data(DataKind::Vector, "b");
        let (o, out) = g.add_op_with_output(
            Opcode::vector(CoreOp::Add),
            &[a, b],
            DataKind::Vector,
            "add",
        );
        let mut s = Schedule::new(g.len());
        s.start[o.idx()] = 0;
        s.start[out.idx()] = 7;
        s.slot[a.idx()] = Some(0);
        s.slot[b.idx()] = Some(1);
        s.slot[out.idx()] = Some(2);
        s.makespan = 7;
        let mut inputs = HashMap::new();
        inputs.insert(a, Value::V([Cplx::real(1.0); 4]));
        inputs.insert(b, Value::V([Cplx::real(2.0); 4]));
        (g, s, inputs)
    }

    #[test]
    fn legal_schedule_passes_and_computes() {
        let (g, s, inputs) = tiny();
        let r = simulate(&g, &ArchSpec::eit(), &s, &inputs);
        assert!(r.ok(), "violations: {:?}", r.violations);
        let out = g.outputs()[0];
        assert_eq!(r.values[&out], Value::V([Cplx::real(3.0); 4]));
    }

    #[test]
    fn counters_track_banks_peaks_and_reconfigs() {
        let (g, s, inputs) = tiny();
        let rep = simulate(&g, &ArchSpec::eit(), &s, &inputs);
        let c = &rep.counters;
        // One issuing cycle with 1 lane busy, the rest idle.
        assert_eq!(c.lane_histogram[1], 1);
        assert_eq!(c.lane_histogram[0], 7);
        // Slots 0 and 1 (banks 0, 1) read at cc 0; slot 2 written at cc 7.
        assert_eq!(c.bank_reads[0], 1);
        assert_eq!(c.bank_reads[1], 1);
        assert_eq!(c.bank_writes[2], 1);
        assert_eq!((c.peak_reads, c.peak_reads_cycle), (2, 0));
        assert_eq!((c.peak_writes, c.peak_writes_cycle), (1, 7));
        // The timeline is exactly the config loads, here the initial one.
        assert_eq!(c.reconfig_timeline.len(), rep.config_loads);
        assert_eq!(c.reconfig_timeline[0].0, 0);
    }

    #[test]
    fn premature_consumer_flagged() {
        let (g, mut s, inputs) = tiny();
        let out = g.outputs()[0];
        s.start[out.idx()] = 5; // before the pipeline finishes
        let r = simulate(&g, &ArchSpec::eit(), &s, &inputs);
        assert!(r.violations.iter().any(|v| matches!(
            v,
            Violation::Precedence { .. } | Violation::DataStart { .. }
        )));
    }

    #[test]
    fn bank_conflict_flagged() {
        let (g, mut s, inputs) = tiny();
        let ins = g.inputs();
        s.slot[ins[0].idx()] = Some(0);
        s.slot[ins[1].idx()] = Some(16); // same bank, different line
        let r = simulate(&g, &ArchSpec::eit(), &s, &inputs);
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Memory { .. })));
    }

    #[test]
    fn missing_slot_flagged() {
        let (g, mut s, inputs) = tiny();
        let ins = g.inputs();
        s.slot[ins[0].idx()] = None;
        let r = simulate(&g, &ArchSpec::eit(), &s, &inputs);
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v, Violation::MissingSlot { .. })));
    }

    #[test]
    fn five_coissued_vector_ops_overflow_lanes() {
        let mut g = Graph::new("t");
        let a = g.add_data(DataKind::Vector, "a");
        let b = g.add_data(DataKind::Vector, "b");
        let mut s_nodes = Vec::new();
        for i in 0..5 {
            let (o, out) = g.add_op_with_output(
                Opcode::vector(CoreOp::Add),
                &[a, b],
                DataKind::Vector,
                &format!("o{i}"),
            );
            s_nodes.push((o, out));
        }
        let mut s = Schedule::new(g.len());
        for (i, &(o, out)) in s_nodes.iter().enumerate() {
            s.start[o.idx()] = 0;
            s.start[out.idx()] = 7;
            s.slot[out.idx()] = Some(2 + i as u32);
        }
        s.slot[a.idx()] = Some(0);
        s.slot[b.idx()] = Some(1);
        s.makespan = 7;
        let v = validate_structure(&g, &ArchSpec::eit(), &s);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::LaneOverflow { used: 5, .. })));
    }

    #[test]
    fn different_configs_same_cycle_flagged() {
        let mut g = Graph::new("t");
        let a = g.add_data(DataKind::Vector, "a");
        let b = g.add_data(DataKind::Vector, "b");
        let (o1, d1) =
            g.add_op_with_output(Opcode::vector(CoreOp::Add), &[a, b], DataKind::Vector, "x");
        let (o2, d2) =
            g.add_op_with_output(Opcode::vector(CoreOp::Mul), &[a, b], DataKind::Vector, "y");
        let mut s = Schedule::new(g.len());
        s.start[o1.idx()] = 0;
        s.start[o2.idx()] = 0;
        s.start[d1.idx()] = 7;
        s.start[d2.idx()] = 7;
        s.slot[a.idx()] = Some(0);
        s.slot[b.idx()] = Some(1);
        s.slot[d1.idx()] = Some(2);
        s.slot[d2.idx()] = Some(3);
        s.makespan = 7;
        let v = validate_structure(&g, &ArchSpec::eit(), &s);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::ConfigConflict { cycle: 0 })));
    }

    #[test]
    fn accelerator_iterative_ops_cannot_overlap() {
        let mut g = Graph::new("t");
        let x = g.add_data(DataKind::Scalar, "x");
        let (o1, d1) = g.add_op_with_output(
            Opcode::Scalar(eit_ir::ScalarOp::Sqrt),
            &[x],
            DataKind::Scalar,
            "s1",
        );
        let (o2, d2) = g.add_op_with_output(
            Opcode::Scalar(eit_ir::ScalarOp::Sqrt),
            &[x],
            DataKind::Scalar,
            "s2",
        );
        let spec = ArchSpec::eit();
        let mut s = Schedule::new(g.len());
        s.start[o1.idx()] = 0;
        s.start[o2.idx()] = 1; // within sqrt's 2-cycle occupancy
        s.start[d1.idx()] = 8;
        s.start[d2.idx()] = 9;
        s.makespan = 9;
        let v = validate_structure(&g, &spec, &s);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::AcceleratorOverlap { .. })));
    }

    #[test]
    fn stale_read_detected_on_slot_reuse() {
        // d1 is read at cc 15, but d2 (starting at cc 14) reuses d1's slot
        // and physically overwrites it at cc 14 — a stale read.
        let mut g = Graph::new("t");
        let a = g.add_data(DataKind::Vector, "a");
        let b = g.add_data(DataKind::Vector, "b");
        let (o1, d1) =
            g.add_op_with_output(Opcode::vector(CoreOp::Add), &[a, b], DataKind::Vector, "p1");
        let (o2, d2) =
            g.add_op_with_output(Opcode::vector(CoreOp::Add), &[a, b], DataKind::Vector, "p2");
        let (o3, d3) =
            g.add_op_with_output(Opcode::vector(CoreOp::Mul), &[d1, b], DataKind::Vector, "c");
        let mut s = Schedule::new(g.len());
        s.start[o1.idx()] = 0;
        s.start[d1.idx()] = 7;
        s.start[o2.idx()] = 7;
        s.start[d2.idx()] = 14;
        s.start[o3.idx()] = 15; // reads d1 at 15, after d2's write at 14
        s.start[d3.idx()] = 22;
        s.slot[a.idx()] = Some(0);
        s.slot[b.idx()] = Some(1);
        s.slot[d1.idx()] = Some(2);
        s.slot[d2.idx()] = Some(2); // same slot, overlapping lifetime
        s.slot[d3.idx()] = Some(3);
        s.makespan = 22;
        let mut inputs = HashMap::new();
        inputs.insert(a, Value::V([Cplx::real(1.0); 4]));
        inputs.insert(b, Value::V([Cplx::real(2.0); 4]));
        let r = simulate(&g, &ArchSpec::eit(), &s, &inputs);
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v, Violation::StaleRead { .. })));
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v, Violation::SlotLifetimeOverlap { .. })));
    }

    #[test]
    fn missing_input_reported() {
        let (g, s, _) = tiny();
        let r = simulate(&g, &ArchSpec::eit(), &s, &HashMap::new());
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v, Violation::MissingInput { .. })));
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use eit_ir::{CoreOp, Cplx, DataKind, Opcode};

    /// Matrix op consuming/producing four vectors, hand-scheduled legally.
    #[test]
    fn matrix_op_simulates_functionally() {
        let mut g = Graph::new("m");
        let rows: Vec<NodeId> = (0..4)
            .map(|i| g.add_data(DataKind::Vector, &format!("r{i}")))
            .collect();
        let m = g.add_op(Opcode::matrix(CoreOp::SquSum), "squsum");
        for &r in &rows {
            g.add_edge(r, m);
        }
        let out = g.add_data(DataKind::Vector, "out");
        g.add_edge(m, out);

        let spec = ArchSpec::eit();
        let mut s = Schedule::new(g.len());
        s.start[out.idx()] = 7;
        for (k, &r) in rows.iter().enumerate() {
            s.slot[r.idx()] = Some(k as u32); // distinct banks, line 0
        }
        s.slot[out.idx()] = Some(4);
        s.makespan = 7;

        let mut inputs = HashMap::new();
        for (k, &r) in rows.iter().enumerate() {
            inputs.insert(r, Value::V([Cplx::real(k as f64 + 1.0); 4]));
        }
        let rep = simulate(&g, &spec, &s, &inputs);
        assert!(rep.ok(), "{:?}", rep.violations);
        // row k has 4 elements of value k+1 → squsum = 4(k+1)².
        let Value::V(v) = rep.values[&out] else {
            panic!()
        };
        for (k, &vk) in v.iter().enumerate() {
            let expect = 4.0 * ((k + 1) * (k + 1)) as f64;
            assert!(vk.approx_eq(Cplx::real(expect), 1e-9));
        }
        assert_eq!(rep.lane_cycles, 4);
    }

    #[test]
    fn negative_start_flagged() {
        let mut g = Graph::new("t");
        let a = g.add_data(DataKind::Vector, "a");
        let (o, d) =
            g.add_op_with_output(Opcode::vector(CoreOp::SquSum), &[a], DataKind::Scalar, "x");
        let mut s = Schedule::new(g.len());
        s.start[o.idx()] = -1;
        s.start[d.idx()] = 6;
        s.slot[a.idx()] = Some(0);
        let v = validate_structure(&g, &ArchSpec::eit(), &s);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::NegativeStart { .. })));
    }

    #[test]
    fn page_line_rule_enforced_in_simulation() {
        // Two inputs of one op in the same page but different lines.
        let mut g = Graph::new("t");
        let a = g.add_data(DataKind::Vector, "a");
        let b = g.add_data(DataKind::Vector, "b");
        let (o, d) =
            g.add_op_with_output(Opcode::vector(CoreOp::Add), &[a, b], DataKind::Vector, "x");
        let mut s = Schedule::new(g.len());
        s.start[o.idx()] = 0;
        s.start[d.idx()] = 7;
        s.slot[a.idx()] = Some(0); // bank 0, line 0, page 0
        s.slot[b.idx()] = Some(17); // bank 1, line 1, page 0 — same page!
        s.slot[d.idx()] = Some(2);
        s.makespan = 7;
        let v = validate_structure(&g, &ArchSpec::eit(), &s);
        assert!(
            v.iter().any(|x| matches!(
                x,
                Violation::Memory {
                    detail: crate::memory::AccessViolation::PageLineConflict { .. },
                    ..
                }
            )),
            "{v:?}"
        );
    }

    #[test]
    fn same_slot_double_read_is_one_broadcast() {
        // One op reading the same datum twice (a·conj(a)).
        let mut g = Graph::new("t");
        let a = g.add_data(DataKind::Vector, "a");
        let o = g.add_op(Opcode::vector(CoreOp::DotP), "dot");
        g.add_edge(a, o);
        g.add_edge(a, o);
        let d = g.add_data(DataKind::Scalar, "d");
        g.add_edge(o, d);
        let mut s = Schedule::new(g.len());
        s.start[d.idx()] = 7;
        s.slot[a.idx()] = Some(3);
        s.makespan = 7;
        let v = validate_structure(&g, &ArchSpec::eit(), &s);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn short_schedule_reports_malformed_instead_of_panicking() {
        let mut g = Graph::new("t");
        let a = g.add_data(DataKind::Vector, "a");
        let (_, _) =
            g.add_op_with_output(Opcode::vector(CoreOp::Add), &[a, a], DataKind::Vector, "x");
        let s = Schedule::new(1); // three nodes, one entry
        let v = validate_structure(&g, &ArchSpec::eit(), &s);
        assert!(
            matches!(v.as_slice(), [Violation::MalformedSchedule { .. }]),
            "{v:?}"
        );
        let rep = simulate(&g, &ArchSpec::eit(), &s, &HashMap::new());
        assert!(rep
            .violations
            .iter()
            .any(|x| matches!(x, Violation::MalformedSchedule { .. })));
    }

    #[test]
    fn cyclic_graph_reports_malformed_instead_of_panicking() {
        let mut g = Graph::new("t");
        let a = g.add_data(DataKind::Vector, "a");
        let o = g.add_op(Opcode::vector(CoreOp::Add), "o");
        g.add_edge(a, o);
        g.add_edge(o, a); // cycle
        let s = Schedule::new(g.len());
        let rep = simulate(&g, &ArchSpec::eit(), &s, &HashMap::new());
        assert!(rep
            .violations
            .iter()
            .any(|x| matches!(x, Violation::MalformedSchedule { .. })));
    }

    #[test]
    fn invalid_spec_reports_malformed() {
        let (g, s, _) = {
            let mut g = Graph::new("t");
            let a = g.add_data(DataKind::Vector, "a");
            g.add_op_with_output(Opcode::vector(CoreOp::Add), &[a, a], DataKind::Vector, "x");
            let s = Schedule::new(g.len());
            (g, s, ())
        };
        let mut spec = ArchSpec::eit();
        spec.n_lanes = 0;
        let v = validate_structure(&g, &spec, &s);
        assert!(
            matches!(v.as_slice(), [Violation::MalformedSchedule { .. }]),
            "{v:?}"
        );
    }

    #[test]
    fn utilization_reflects_gaps() {
        let (g, s, inputs) = {
            // reuse tiny(): one op over 7 cycles → 1 lane-cycle of 4×8.
            let mut g = Graph::new("t");
            let a = g.add_data(DataKind::Vector, "a");
            let b = g.add_data(DataKind::Vector, "b");
            let (o, out) = g.add_op_with_output(
                Opcode::vector(CoreOp::Add),
                &[a, b],
                DataKind::Vector,
                "add",
            );
            let mut s = Schedule::new(g.len());
            s.start[o.idx()] = 0;
            s.start[out.idx()] = 7;
            s.slot[a.idx()] = Some(0);
            s.slot[b.idx()] = Some(1);
            s.slot[out.idx()] = Some(2);
            s.makespan = 7;
            let mut inputs = HashMap::new();
            inputs.insert(a, Value::V([Cplx::real(1.0); 4]));
            inputs.insert(b, Value::V([Cplx::real(2.0); 4]));
            (g, s, inputs)
        };
        let rep = simulate(&g, &ArchSpec::eit(), &s, &inputs);
        assert_eq!(rep.lane_cycles, 1);
        assert!((rep.utilization - 1.0 / 32.0).abs() < 1e-12);
    }
}
