//! The scheduler ↔ simulator interface: a complete schedule with memory
//! allocation.
//!
//! A [`Schedule`] assigns every IR node a start time `s_i` and every
//! vector data node a memory slot — exactly the output the paper's CP
//! model produces (§3.3–3.4). It is deliberately a plain data structure:
//! the constraint solver produces it, the code generator consumes it, and
//! the simulator validates it, all through this type.

use eit_ir::{Category, Graph, NodeId};

#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule {
    /// Start time per node (indexed by `NodeId`).
    pub start: Vec<i32>,
    /// Memory slot per node (`Some` for vector data nodes).
    pub slot: Vec<Option<u32>>,
    /// Latest completion over all nodes (the paper's objective (5)).
    pub makespan: i32,
}

impl Schedule {
    pub fn new(n_nodes: usize) -> Self {
        Schedule {
            start: vec![0; n_nodes],
            slot: vec![None; n_nodes],
            makespan: 0,
        }
    }

    pub fn start_of(&self, n: NodeId) -> i32 {
        self.start[n.idx()]
    }

    pub fn slot_of(&self, n: NodeId) -> Option<u32> {
        self.slot[n.idx()]
    }

    /// Lifetime `[start, end)` of a data node per the paper's (10): from
    /// its own start to the start of its latest consumer. A node with no
    /// consumers (an application output) lives one cycle, long enough to
    /// be written.
    pub fn lifetime(&self, g: &Graph, n: NodeId) -> (i32, i32) {
        debug_assert!(g.category(n).is_data());
        let s = self.start_of(n);
        let end = g
            .succs(n)
            .iter()
            .map(|&c| self.start_of(c))
            .max()
            .unwrap_or(s + 1);
        (s, end.max(s + 1))
    }

    /// Number of distinct slots used by vector data.
    pub fn slots_used(&self, g: &Graph) -> usize {
        let mut used: Vec<u32> = g
            .ids()
            .filter(|&i| g.category(i) == Category::VectorData)
            .filter_map(|i| self.slot_of(i))
            .collect();
        used.sort_unstable();
        used.dedup();
        used.len()
    }

    /// Recompute the makespan from starts and a latency function.
    pub fn compute_makespan<F: Fn(NodeId) -> i32>(&mut self, g: &Graph, latency: &F) {
        self.makespan = g
            .ids()
            .map(|i| self.start_of(i) + latency(i))
            .max()
            .unwrap_or(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eit_ir::{CoreOp, DataKind, Opcode};

    #[test]
    fn lifetime_spans_to_latest_consumer() {
        let mut g = Graph::new("t");
        let a = g.add_data(DataKind::Vector, "a");
        let b = g.add_data(DataKind::Vector, "b");
        let (o1, _) =
            g.add_op_with_output(Opcode::vector(CoreOp::Add), &[a, b], DataKind::Vector, "x");
        let (o2, _) =
            g.add_op_with_output(Opcode::vector(CoreOp::Sub), &[a, b], DataKind::Vector, "y");
        let mut s = Schedule::new(g.len());
        s.start[o1.idx()] = 3;
        s.start[o2.idx()] = 9;
        assert_eq!(s.lifetime(&g, a), (0, 9));
    }

    #[test]
    fn output_lifetime_is_one_cycle() {
        let mut g = Graph::new("t");
        let a = g.add_data(DataKind::Vector, "a");
        let (_, out) =
            g.add_op_with_output(Opcode::vector(CoreOp::Add), &[a, a], DataKind::Vector, "x");
        let mut s = Schedule::new(g.len());
        s.start[out.idx()] = 7;
        assert_eq!(s.lifetime(&g, out), (7, 8));
    }

    #[test]
    fn slots_used_counts_distinct() {
        let mut g = Graph::new("t");
        let a = g.add_data(DataKind::Vector, "a");
        let b = g.add_data(DataKind::Vector, "b");
        let c = g.add_data(DataKind::Vector, "c");
        let mut s = Schedule::new(g.len());
        s.slot[a.idx()] = Some(5);
        s.slot[b.idx()] = Some(5);
        s.slot[c.idx()] = Some(9);
        assert_eq!(s.slots_used(&g), 2);
    }
}
