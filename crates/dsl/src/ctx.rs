//! The embedded DSL: architecture-level values that *evaluate eagerly*
//! (so a DSL program can be run and debugged functionally, as the paper's
//! Scala embedding is) while *recording* the dataflow IR of everything
//! they compute.
//!
//! Three value types mirror the architecture's data types (§3.1):
//! [`Scalar`], [`Vector`] (four complex elements — one memory slot) and
//! [`Matrix`] (four vectors; per §3.2.1 a matrix is *expanded into four
//! vector data nodes* in the IR and never exists as a data node itself).
//!
//! Every operation method creates the corresponding operation node, so
//! "the operations selected by the programmer during coding will be more
//! or less the ones used in the machine code" — the merge pass may later
//! fold pre/post stages, but nothing else is re-selected.

use eit_ir::cplx::Cplx;
use eit_ir::{CoreOp, DataKind, Graph, NodeId, Opcode, PostOp, PreOp, ScalarOp};
use std::cell::RefCell;
use std::rc::Rc;

/// Shared recording context. Cheap to clone; all values created from the
/// same `Ctx` append to the same graph.
#[derive(Clone)]
pub struct Ctx {
    g: Rc<RefCell<Graph>>,
}

impl Ctx {
    pub fn new(name: &str) -> Self {
        Ctx {
            g: Rc::new(RefCell::new(Graph::new(name))),
        }
    }

    /// Snapshot of the recorded graph.
    pub fn graph(&self) -> Graph {
        self.g.borrow().clone()
    }

    /// Finish recording and return the graph. If other value handles still
    /// share the context, a clone of the graph is returned instead.
    pub fn finish(self) -> Graph {
        match Rc::try_unwrap(self.g) {
            Ok(cell) => cell.into_inner(),
            Err(rc) => rc.borrow().clone(),
        }
    }

    // ---- inputs --------------------------------------------------------

    /// A vector application input.
    pub fn vector<T: Into<Cplx> + Copy>(&self, vals: [T; 4]) -> Vector {
        let name = format!("v_in{}", self.g.borrow().len());
        let id = self.g.borrow_mut().add_data(DataKind::Vector, &name);
        Vector {
            ctx: self.clone(),
            id,
            val: vals.map(Into::into),
        }
    }

    /// A named vector application input.
    pub fn vector_named<T: Into<Cplx> + Copy>(&self, name: &str, vals: [T; 4]) -> Vector {
        let id = self.g.borrow_mut().add_data(DataKind::Vector, name);
        Vector {
            ctx: self.clone(),
            id,
            val: vals.map(Into::into),
        }
    }

    /// A scalar application input.
    pub fn scalar<T: Into<Cplx>>(&self, v: T) -> Scalar {
        let name = format!("s_in{}", self.g.borrow().len());
        let id = self.g.borrow_mut().add_data(DataKind::Scalar, &name);
        Scalar {
            ctx: self.clone(),
            id,
            val: v.into(),
        }
    }

    /// A 4×4 matrix input (row-major), expanded into four vector inputs.
    pub fn matrix<T: Into<Cplx> + Copy>(&self, rows: [[T; 4]; 4]) -> Matrix {
        Matrix {
            rows: rows.map(|r| self.vector(r)),
        }
    }

    /// Merge four scalars into a vector (a `merge` node, fig. 3/5).
    pub fn merge(&self, s: [&Scalar; 4]) -> Vector {
        let mut g = self.g.borrow_mut();
        let op = g.add_op(Opcode::Merge, "merge");
        for x in s {
            g.add_edge(x.id, op);
        }
        let out = g.add_data(DataKind::Vector, "merge.out");
        g.add_edge(op, out);
        Vector {
            ctx: self.clone(),
            id: out,
            val: [s[0].val, s[1].val, s[2].val, s[3].val],
        }
    }

    // ---- internal helpers ------------------------------------------------

    fn unary_vector(&self, op: Opcode, a: &Vector, val: [Cplx; 4], name: &str) -> Vector {
        let mut g = self.g.borrow_mut();
        let (_, out) = g.add_op_with_output(op, &[a.id], DataKind::Vector, name);
        Vector {
            ctx: self.clone(),
            id: out,
            val,
        }
    }

    fn binary_vector(
        &self,
        op: Opcode,
        a: &Vector,
        b: &Vector,
        val: [Cplx; 4],
        name: &str,
    ) -> Vector {
        let mut g = self.g.borrow_mut();
        let (_, out) = g.add_op_with_output(op, &[a.id, b.id], DataKind::Vector, name);
        Vector {
            ctx: self.clone(),
            id: out,
            val,
        }
    }

    fn scalar_unary(&self, sop: ScalarOp, a: &Scalar, val: Cplx, name: &str) -> Scalar {
        let mut g = self.g.borrow_mut();
        let (_, out) = g.add_op_with_output(Opcode::Scalar(sop), &[a.id], DataKind::Scalar, name);
        Scalar {
            ctx: self.clone(),
            id: out,
            val,
        }
    }

    fn scalar_binary(
        &self,
        sop: ScalarOp,
        a: &Scalar,
        b: &Scalar,
        val: Cplx,
        name: &str,
    ) -> Scalar {
        let mut g = self.g.borrow_mut();
        let (_, out) =
            g.add_op_with_output(Opcode::Scalar(sop), &[a.id, b.id], DataKind::Scalar, name);
        Scalar {
            ctx: self.clone(),
            id: out,
            val,
        }
    }
}

/// A complex scalar value with its IR node.
#[derive(Clone)]
pub struct Scalar {
    ctx: Ctx,
    pub(crate) id: NodeId,
    val: Cplx,
}

impl Scalar {
    /// The evaluated value (functional-debugging view).
    pub fn value(&self) -> Cplx {
        self.val
    }

    pub fn node(&self) -> NodeId {
        self.id
    }

    /// `√x` on the scalar accelerator.
    pub fn sqrt(&self) -> Scalar {
        self.ctx
            .scalar_unary(ScalarOp::Sqrt, self, self.val.sqrt(), "sqrt")
    }

    /// `1/√x` on the scalar accelerator.
    pub fn rsqrt(&self) -> Scalar {
        self.ctx
            .scalar_unary(ScalarOp::RSqrt, self, self.val.rsqrt(), "rsqrt")
    }

    /// `1/x` on the scalar accelerator.
    pub fn recip(&self) -> Scalar {
        self.ctx
            .scalar_unary(ScalarOp::Recip, self, self.val.recip(), "recip")
    }

    /// `−x`.
    pub fn neg(&self) -> Scalar {
        self.ctx.scalar_unary(ScalarOp::Neg, self, -self.val, "neg")
    }

    /// `self / other` on the scalar accelerator.
    pub fn div(&self, other: &Scalar) -> Scalar {
        self.ctx
            .scalar_binary(ScalarOp::Div, self, other, self.val / other.val, "div")
    }

    pub fn add(&self, other: &Scalar) -> Scalar {
        self.ctx
            .scalar_binary(ScalarOp::Add, self, other, self.val + other.val, "sadd")
    }

    pub fn sub(&self, other: &Scalar) -> Scalar {
        self.ctx
            .scalar_binary(ScalarOp::Sub, self, other, self.val - other.val, "ssub")
    }

    pub fn mul(&self, other: &Scalar) -> Scalar {
        self.ctx
            .scalar_binary(ScalarOp::Mul, self, other, self.val * other.val, "smul")
    }

    /// CORDIC vectoring: the magnitude `|self|` (phase extraction's
    /// companion output on the EIT accelerator).
    pub fn cordic_vec(&self) -> Scalar {
        self.ctx.scalar_unary(
            ScalarOp::CordicVec,
            self,
            Cplx::real(self.val.abs()),
            "cordic_vec",
        )
    }

    /// CORDIC rotation: rotate `self` by the phase of `other`
    /// (`self · other/|other|`).
    pub fn cordic_rot(&self, other: &Scalar) -> Scalar {
        let phase = if other.val.abs() == 0.0 {
            Cplx::ONE
        } else {
            other.val * (1.0 / other.val.abs())
        };
        self.ctx.scalar_binary(
            ScalarOp::CordicRot,
            self,
            other,
            self.val * phase,
            "cordic_rot",
        )
    }
}

/// A four-element complex vector with its IR node.
#[derive(Clone)]
pub struct Vector {
    ctx: Ctx,
    pub(crate) id: NodeId,
    val: [Cplx; 4],
}

impl Vector {
    pub fn value(&self) -> [Cplx; 4] {
        self.val
    }

    pub fn node(&self) -> NodeId {
        self.id
    }

    /// Dot product `Σ aₖ·conj(bₖ)` — the Hermitian inner product the MIMO
    /// kernels use (the paper's `v_dotP`). Vector → scalar.
    pub fn v_dotp(&self, other: &Vector) -> Scalar {
        let val = self
            .val
            .iter()
            .zip(&other.val)
            .fold(Cplx::ZERO, |acc, (&a, &b)| acc + a * b.conj());
        let mut g = self.ctx.g.borrow_mut();
        let (_, out) = g.add_op_with_output(
            Opcode::vector(CoreOp::DotP),
            &[self.id, other.id],
            DataKind::Scalar,
            "v_dotp",
        );
        Scalar {
            ctx: self.ctx.clone(),
            id: out,
            val,
        }
    }

    /// Element-wise addition.
    pub fn v_add(&self, other: &Vector) -> Vector {
        let val = std::array::from_fn(|k| self.val[k] + other.val[k]);
        self.ctx
            .binary_vector(Opcode::vector(CoreOp::Add), self, other, val, "v_add")
    }

    /// Element-wise subtraction.
    pub fn v_sub(&self, other: &Vector) -> Vector {
        let val = std::array::from_fn(|k| self.val[k] - other.val[k]);
        self.ctx
            .binary_vector(Opcode::vector(CoreOp::Sub), self, other, val, "v_sub")
    }

    /// Element-wise (Hadamard) multiplication.
    pub fn v_mul(&self, other: &Vector) -> Vector {
        let val = std::array::from_fn(|k| self.val[k] * other.val[k]);
        self.ctx
            .binary_vector(Opcode::vector(CoreOp::Mul), self, other, val, "v_mul")
    }

    /// Vector × scalar.
    pub fn v_scale(&self, s: &Scalar) -> Vector {
        let val = self.val.map(|x| x * s.value());
        let mut g = self.ctx.g.borrow_mut();
        let (_, out) = g.add_op_with_output(
            Opcode::vector(CoreOp::Scale),
            &[self.id, s.id],
            DataKind::Vector,
            "v_scale",
        );
        Vector {
            ctx: self.ctx.clone(),
            id: out,
            val,
        }
    }

    /// Squared Euclidean norm `Σ |aₖ|²`. Vector → scalar.
    pub fn v_squsum(&self) -> Scalar {
        let val = Cplx::real(self.val.iter().map(|x| x.abs2()).sum());
        let mut g = self.ctx.g.borrow_mut();
        let (_, out) = g.add_op_with_output(
            Opcode::vector(CoreOp::SquSum),
            &[self.id],
            DataKind::Scalar,
            "v_squsum",
        );
        Scalar {
            ctx: self.ctx.clone(),
            id: out,
            val,
        }
    }

    /// Fused multiply-accumulate `self∘b + c` (three operands — the CMAC).
    pub fn v_mac(&self, b: &Vector, c: &Vector) -> Vector {
        let val = std::array::from_fn(|k| self.val[k] * b.val[k] + c.val[k]);
        let mut g = self.ctx.g.borrow_mut();
        let (_, out) = g.add_op_with_output(
            Opcode::vector(CoreOp::Mac),
            &[self.id, b.id, c.id],
            DataKind::Vector,
            "v_mac",
        );
        Vector {
            ctx: self.ctx.clone(),
            id: out,
            val,
        }
    }

    /// Lane-wise conjugation — a stand-alone *pre-processing* op
    /// (hermitian), fig. 6 left.
    pub fn hermitian(&self) -> Vector {
        let val = self.val.map(Cplx::conj);
        self.ctx.unary_vector(
            Opcode::Vector {
                pre: Some((PreOp::Hermitian, 0)),
                core: CoreOp::Pass,
                post: None,
            },
            self,
            val,
            "hermitian",
        )
    }

    /// Zero the lanes whose mask bit (LSB = lane 0) is clear — a
    /// stand-alone pre-processing op.
    pub fn mask(&self, m: u8) -> Vector {
        let val = std::array::from_fn(|k| {
            if m & (1 << k) != 0 {
                self.val[k]
            } else {
                Cplx::ZERO
            }
        });
        self.ctx.unary_vector(
            Opcode::Vector {
                pre: Some((PreOp::Mask(m), 0)),
                core: CoreOp::Pass,
                post: None,
            },
            self,
            val,
            "mask",
        )
    }

    /// Sort lanes by magnitude, descending — a stand-alone
    /// *post-processing* op (result sorting, §1.1).
    pub fn sort(&self) -> Vector {
        let mut v = self.val;
        v.sort_by(|a, b| b.abs2().partial_cmp(&a.abs2()).unwrap());
        self.ctx.unary_vector(
            Opcode::Vector {
                pre: None,
                core: CoreOp::Pass,
                post: Some(PostOp::Sort),
            },
            self,
            v,
            "sort",
        )
    }

    /// Permute lanes by a packed 4x2-bit code (lane k takes source lane
    /// `(code >> 2k) & 3`) — a stand-alone pre-processing op.
    pub fn shuffle(&self, code: u8) -> Vector {
        let val = std::array::from_fn(|k| self.val[((code >> (2 * k)) & 0b11) as usize]);
        self.ctx.unary_vector(
            Opcode::Vector {
                pre: Some((PreOp::Shuffle(code), 0)),
                core: CoreOp::Pass,
                post: None,
            },
            self,
            val,
            "shuffle",
        )
    }

    /// Broadcast lane `k` to all lanes (a shuffle with a constant code).
    pub fn broadcast(&self, k: u8) -> Vector {
        assert!(k < 4);
        let code = k | (k << 2) | (k << 4) | (k << 6);
        self.shuffle(code)
    }

    /// Extract element `k` (index unit). Vector → scalar.
    pub fn index(&self, k: u8) -> Scalar {
        assert!(k < 4);
        let mut g = self.ctx.g.borrow_mut();
        let (_, out) = g.add_op_with_output(
            Opcode::Index(k),
            &[self.id],
            DataKind::Scalar,
            &format!("index{k}"),
        );
        Scalar {
            ctx: self.ctx.clone(),
            id: out,
            val: self.val[k as usize],
        }
    }
}

/// A 4×4 complex matrix: four row [`Vector`]s. Never a data node itself
/// (§3.2.1) — matrix *operations* consume/produce the row vectors.
#[derive(Clone)]
pub struct Matrix {
    rows: [Vector; 4],
}

impl Matrix {
    pub fn from_rows(rows: [Vector; 4]) -> Self {
        Matrix { rows }
    }

    pub fn row(&self, i: usize) -> &Vector {
        &self.rows[i]
    }

    pub fn rows(&self) -> &[Vector; 4] {
        &self.rows
    }

    pub fn values(&self) -> [[Cplx; 4]; 4] {
        [
            self.rows[0].val,
            self.rows[1].val,
            self.rows[2].val,
            self.rows[3].val,
        ]
    }

    fn ctx(&self) -> &Ctx {
        &self.rows[0].ctx
    }

    /// Matrix multiplication as a single *matrix operation* node
    /// (8 vector inputs, 4 vector outputs; occupies all four lanes).
    pub fn m_mul(&self, other: &Matrix) -> Matrix {
        let a = self.values();
        let b = other.values();
        let mut c = [[Cplx::ZERO; 4]; 4];
        for i in 0..4 {
            for j in 0..4 {
                for (k, bk) in b.iter().enumerate() {
                    c[i][j] = c[i][j] + a[i][k] * bk[j];
                }
            }
        }
        let ctx = self.ctx().clone();
        let mut g = ctx.g.borrow_mut();
        let op = g.add_op(Opcode::matrix(CoreOp::Mul), "m_mul");
        for r in self.rows.iter().chain(&other.rows) {
            g.add_edge(r.id, op);
        }
        let rows = std::array::from_fn(|i| {
            let out = g.add_data(DataKind::Vector, &format!("m_mul.r{i}"));
            g.add_edge(op, out);
            Vector {
                ctx: ctx.clone(),
                id: out,
                val: c[i],
            }
        });
        drop(g);
        Matrix { rows }
    }

    /// Row-wise squared sums as one matrix op (fig. 4): 4 vector inputs,
    /// one vector output holding `‖row_i‖²` in lane `i`.
    pub fn m_squsum(&self) -> Vector {
        let val =
            std::array::from_fn(|i| Cplx::real(self.rows[i].val.iter().map(|x| x.abs2()).sum()));
        let ctx = self.ctx().clone();
        let mut g = ctx.g.borrow_mut();
        let op = g.add_op(Opcode::matrix(CoreOp::SquSum), "m_squsum");
        for r in &self.rows {
            g.add_edge(r.id, op);
        }
        let out = g.add_data(DataKind::Vector, "m_squsum.out");
        g.add_edge(op, out);
        Vector {
            ctx: ctx.clone(),
            id: out,
            val,
        }
    }

    /// Element-wise matrix addition as one matrix op (8 vector inputs,
    /// 4 vector outputs).
    pub fn m_add(&self, other: &Matrix) -> Matrix {
        let ctx = self.ctx().clone();
        let mut g = ctx.g.borrow_mut();
        let op = g.add_op(Opcode::matrix(CoreOp::Add), "m_add");
        for r in self.rows.iter().chain(&other.rows) {
            g.add_edge(r.id, op);
        }
        let rows = std::array::from_fn(|i| {
            let out = g.add_data(DataKind::Vector, &format!("m_add.r{i}"));
            g.add_edge(op, out);
            let val = std::array::from_fn(|j| self.rows[i].val[j] + other.rows[i].val[j]);
            Vector {
                ctx: ctx.clone(),
                id: out,
                val,
            }
        });
        drop(g);
        Matrix { rows }
    }

    /// Element-wise matrix subtraction as one matrix op.
    pub fn m_sub(&self, other: &Matrix) -> Matrix {
        let ctx = self.ctx().clone();
        let mut g = ctx.g.borrow_mut();
        let op = g.add_op(Opcode::matrix(CoreOp::Sub), "m_sub");
        for r in self.rows.iter().chain(&other.rows) {
            g.add_edge(r.id, op);
        }
        let rows = std::array::from_fn(|i| {
            let out = g.add_data(DataKind::Vector, &format!("m_sub.r{i}"));
            g.add_edge(op, out);
            let val = std::array::from_fn(|j| self.rows[i].val[j] - other.rows[i].val[j]);
            Vector {
                ctx: ctx.clone(),
                id: out,
                val,
            }
        });
        drop(g);
        Matrix { rows }
    }

    /// Conjugate transpose as one matrix op (pre-processing stage,
    /// 4 inputs → 4 outputs).
    pub fn m_hermitian(&self) -> Matrix {
        let a = self.values();
        let ctx = self.ctx().clone();
        let mut g = ctx.g.borrow_mut();
        let op = g.add_op(
            Opcode::Matrix {
                pre: Some((PreOp::Hermitian, 0)),
                core: CoreOp::Pass,
                post: None,
            },
            "m_hermitian",
        );
        for r in &self.rows {
            g.add_edge(r.id, op);
        }
        let rows = std::array::from_fn(|i| {
            let out = g.add_data(DataKind::Vector, &format!("m_herm.r{i}"));
            g.add_edge(op, out);
            let val = std::array::from_fn(|j| a[j][i].conj());
            Vector {
                ctx: ctx.clone(),
                id: out,
                val,
            }
        });
        drop(g);
        Matrix { rows }
    }

    /// Scale every element by a scalar, one matrix op.
    pub fn m_scale(&self, s: &Scalar) -> Matrix {
        let ctx = self.ctx().clone();
        let mut g = ctx.g.borrow_mut();
        let op = g.add_op(Opcode::matrix(CoreOp::Scale), "m_scale");
        for r in &self.rows {
            g.add_edge(r.id, op);
        }
        g.add_edge(s.id, op);
        let rows = std::array::from_fn(|i| {
            let out = g.add_data(DataKind::Vector, &format!("m_scale.r{i}"));
            g.add_edge(op, out);
            Vector {
                ctx: ctx.clone(),
                id: out,
                val: self.rows[i].val.map(|x| x * s.value()),
            }
        });
        drop(g);
        Matrix { rows }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eit_ir::Category;

    const EPS: f64 = 1e-12;

    #[test]
    fn vector_arithmetic_evaluates() {
        let ctx = Ctx::new("t");
        let a = ctx.vector([1.0, 2.0, 3.0, 4.0]);
        let b = ctx.vector([2.0, 3.0, 4.0, 5.0]);
        let s = a.v_add(&b);
        assert_eq!(s.value()[0], Cplx::real(3.0));
        assert_eq!(s.value()[3], Cplx::real(9.0));
        let d = a.v_dotp(&b);
        assert_eq!(d.value(), Cplx::real(2.0 + 6.0 + 12.0 + 20.0));
    }

    #[test]
    fn dotp_conjugates_second_operand() {
        let ctx = Ctx::new("t");
        let a = ctx.vector([(0.0, 1.0), (0.0, 0.0), (0.0, 0.0), (0.0, 0.0)]);
        let b = ctx.vector([(0.0, 1.0), (0.0, 0.0), (0.0, 0.0), (0.0, 0.0)]);
        // ⟨i, i⟩ = i·conj(i) = 1
        assert!(a.v_dotp(&b).value().approx_eq(Cplx::ONE, EPS));
    }

    #[test]
    fn squsum_is_real_norm() {
        let ctx = Ctx::new("t");
        let a = ctx.vector([(3.0, 4.0), (0.0, 0.0), (1.0, 0.0), (0.0, 2.0)]);
        assert!(a
            .v_squsum()
            .value()
            .approx_eq(Cplx::real(25.0 + 1.0 + 4.0), EPS));
    }

    #[test]
    fn mask_zeroes_unset_lanes() {
        let ctx = Ctx::new("t");
        let a = ctx.vector([1.0, 2.0, 3.0, 4.0]);
        let m = a.mask(0b0101);
        assert_eq!(m.value()[0], Cplx::real(1.0));
        assert_eq!(m.value()[1], Cplx::ZERO);
        assert_eq!(m.value()[2], Cplx::real(3.0));
        assert_eq!(m.value()[3], Cplx::ZERO);
    }

    #[test]
    fn sort_orders_by_magnitude_descending() {
        let ctx = Ctx::new("t");
        let a = ctx.vector([1.0, 4.0, 2.0, 3.0]);
        let s = a.sort();
        let mags: Vec<f64> = s.value().iter().map(|x| x.abs()).collect();
        assert_eq!(mags, vec![4.0, 3.0, 2.0, 1.0]);
    }

    #[test]
    fn scalar_accelerator_ops() {
        let ctx = Ctx::new("t");
        let x = ctx.scalar(16.0);
        assert!(x.sqrt().value().approx_eq(Cplx::real(4.0), EPS));
        assert!(x.rsqrt().value().approx_eq(Cplx::real(0.25), EPS));
        assert!(x.recip().value().approx_eq(Cplx::real(1.0 / 16.0), EPS));
        let y = ctx.scalar(2.0);
        assert!(x.div(&y).value().approx_eq(Cplx::real(8.0), EPS));
    }

    #[test]
    fn index_and_merge_are_inverses() {
        let ctx = Ctx::new("t");
        let a = ctx.vector([1.0, 2.0, 3.0, 4.0]);
        let parts: Vec<Scalar> = (0..4).map(|k| a.index(k)).collect();
        let back = ctx.merge([&parts[0], &parts[1], &parts[2], &parts[3]]);
        assert_eq!(back.value(), a.value());
    }

    #[test]
    fn matrix_mul_matches_reference() {
        let ctx = Ctx::new("t");
        let a = ctx.matrix([
            [1.0, 2.0, 0.0, 0.0],
            [0.0, 1.0, 0.0, 0.0],
            [0.0, 0.0, 1.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        ]);
        let b = ctx.matrix([
            [1.0, 0.0, 0.0, 0.0],
            [3.0, 1.0, 0.0, 0.0],
            [0.0, 0.0, 1.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        ]);
        let c = a.m_mul(&b);
        // first row: [1+6, 2, 0, 0]
        assert!(c.values()[0][0].approx_eq(Cplx::real(7.0), EPS));
        assert!(c.values()[0][1].approx_eq(Cplx::real(2.0), EPS));
        assert!(c.values()[1][0].approx_eq(Cplx::real(3.0), EPS));
    }

    #[test]
    fn hermitian_transposes_and_conjugates() {
        let ctx = Ctx::new("t");
        let a = ctx.matrix([
            [(1.0, 1.0), (0.0, 0.0), (0.0, 0.0), (0.0, 0.0)],
            [(2.0, -3.0), (0.0, 0.0), (0.0, 0.0), (0.0, 0.0)],
            [(0.0, 0.0), (0.0, 0.0), (0.0, 0.0), (0.0, 0.0)],
            [(0.0, 0.0), (0.0, 0.0), (0.0, 0.0), (0.0, 0.0)],
        ]);
        let h = a.m_hermitian();
        assert!(h.values()[0][0].approx_eq(Cplx::new(1.0, -1.0), EPS));
        assert!(h.values()[0][1].approx_eq(Cplx::new(2.0, 3.0), EPS));
    }

    #[test]
    fn ir_is_bipartite_and_valid() {
        let ctx = Ctx::new("t");
        let a = ctx.vector([1.0, 2.0, 3.0, 4.0]);
        let b = ctx.vector([2.0, 3.0, 4.0, 5.0]);
        let d = a.v_dotp(&b);
        let _r = d.sqrt();
        let g = ctx.graph();
        g.validate().unwrap();
        assert_eq!(g.count(Category::VectorOp), 1);
        assert_eq!(g.count(Category::ScalarOp), 1);
        assert_eq!(g.count(Category::VectorData), 2);
        assert_eq!(g.count(Category::ScalarData), 2);
    }

    #[test]
    fn matrix_expands_to_four_vector_nodes() {
        let ctx = Ctx::new("t");
        let a = ctx.matrix([[1.0; 4]; 4]);
        let _ = a.m_squsum();
        let g = ctx.graph();
        g.validate().unwrap();
        // 4 input vectors + 1 output vector; no "matrix data" exists.
        assert_eq!(g.count(Category::VectorData), 5);
        assert_eq!(g.count(Category::MatrixOp), 1);
    }

    #[test]
    fn shuffle_and_broadcast() {
        let ctx = Ctx::new("t");
        let a = ctx.vector([1.0, 2.0, 3.0, 4.0]);
        let rev = a.shuffle(0b00_01_10_11);
        assert_eq!(rev.value()[0], Cplx::real(4.0));
        assert_eq!(rev.value()[3], Cplx::real(1.0));
        let b2 = a.broadcast(2);
        for k in 0..4 {
            assert_eq!(b2.value()[k], Cplx::real(3.0));
        }
    }

    #[test]
    fn cordic_ops_evaluate() {
        let ctx = Ctx::new("t");
        let z = ctx.scalar((3.0, 4.0));
        assert!(z.cordic_vec().value().approx_eq(Cplx::real(5.0), 1e-12));
        let one = ctx.scalar(1.0);
        // Rotating 1 by the phase of z gives z/|z|.
        let r = one.cordic_rot(&z);
        assert!(r.value().approx_eq(Cplx::new(0.6, 0.8), 1e-12));
    }

    #[test]
    fn mac_fuses_three_operands() {
        let ctx = Ctx::new("t");
        let a = ctx.vector([1.0, 2.0, 3.0, 4.0]);
        let b = ctx.vector([2.0, 2.0, 2.0, 2.0]);
        let c = ctx.vector([1.0, 1.0, 1.0, 1.0]);
        let r = a.v_mac(&b, &c);
        assert_eq!(r.value()[3], Cplx::real(9.0));
        let g = ctx.graph();
        let macs: Vec<_> = g
            .ids()
            .filter(|&i| {
                matches!(
                    g.opcode(i),
                    Some(Opcode::Vector {
                        core: CoreOp::Mac,
                        ..
                    })
                )
            })
            .collect();
        assert_eq!(g.preds(macs[0]).len(), 3);
    }
}
