//! # eit-dsl — the embedded domain-specific language
//!
//! The Rust counterpart of the paper's Scala DSL (§3.1): architecture-
//! specific data types ([`Scalar`], [`Vector`], [`Matrix`]) whose
//! operations each correspond to one operation implemented by the EIT
//! architecture. Running a DSL program does two things at once:
//!
//! 1. **evaluates** it over complex numbers — the functional-debugging
//!    role the paper assigns to running the Scala embedding;
//! 2. **records** the bipartite dataflow IR ([`eit_ir::Graph`]) that the
//!    scheduler consumes.
//!
//! ```
//! use eit_dsl::Ctx;
//!
//! // Listing 1 of the paper, one entry: C[0][1] = row0 · conj(row1).
//! let ctx = Ctx::new("demo");
//! let v1 = ctx.vector([1.0, 2.0, 3.0, 4.0]);
//! let v2 = ctx.vector([2.0, 3.0, 4.0, 5.0]);
//! let c01 = v1.v_dotp(&v2);
//! assert_eq!(c01.value().re, 2.0 + 6.0 + 12.0 + 20.0);
//!
//! let graph = ctx.finish();
//! graph.validate().unwrap();
//! ```

pub mod ctx;
pub mod ops;

pub use ctx::{Ctx, Matrix, Scalar, Vector};
pub use eit_ir::cplx;
pub use eit_ir::Cplx;
