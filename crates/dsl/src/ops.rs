//! Operator overloading for DSL values: `&a + &b` ≡ `a.v_add(&b)` and so
//! on. Implemented on references because every operation *records* into
//! the shared context — values are handles, not plain data.

use crate::ctx::{Scalar, Vector};
use std::ops::{Add, Mul, Neg, Sub};

impl Add for &Vector {
    type Output = Vector;
    fn add(self, rhs: &Vector) -> Vector {
        self.v_add(rhs)
    }
}

impl Sub for &Vector {
    type Output = Vector;
    fn sub(self, rhs: &Vector) -> Vector {
        self.v_sub(rhs)
    }
}

/// Element-wise (Hadamard) product.
impl Mul for &Vector {
    type Output = Vector;
    fn mul(self, rhs: &Vector) -> Vector {
        self.v_mul(rhs)
    }
}

/// Vector × scalar scaling.
impl Mul<&Scalar> for &Vector {
    type Output = Vector;
    fn mul(self, rhs: &Scalar) -> Vector {
        self.v_scale(rhs)
    }
}

impl Add for &Scalar {
    type Output = Scalar;
    fn add(self, rhs: &Scalar) -> Scalar {
        Scalar::add(self, rhs)
    }
}

impl Sub for &Scalar {
    type Output = Scalar;
    fn sub(self, rhs: &Scalar) -> Scalar {
        Scalar::sub(self, rhs)
    }
}

impl Mul for &Scalar {
    type Output = Scalar;
    fn mul(self, rhs: &Scalar) -> Scalar {
        Scalar::mul(self, rhs)
    }
}

impl Neg for &Scalar {
    type Output = Scalar;
    fn neg(self) -> Scalar {
        Scalar::neg(self)
    }
}

#[cfg(test)]
mod tests {
    use crate::ctx::Ctx;
    use eit_ir::Cplx;

    #[test]
    fn vector_operators_record_ops() {
        let ctx = Ctx::new("ops");
        let a = ctx.vector([1.0, 2.0, 3.0, 4.0]);
        let b = ctx.vector([4.0, 3.0, 2.0, 1.0]);
        let sum = &a + &b;
        let diff = &a - &b;
        let prod = &a * &b;
        assert_eq!(sum.value()[0], Cplx::real(5.0));
        assert_eq!(diff.value()[0], Cplx::real(-3.0));
        assert_eq!(prod.value()[0], Cplx::real(4.0));
        let g = ctx.graph();
        assert_eq!(g.count(eit_ir::Category::VectorOp), 3);
    }

    #[test]
    fn scalar_operators_and_scaling() {
        let ctx = Ctx::new("ops");
        let a = ctx.vector([1.0, 1.0, 1.0, 1.0]);
        let s = ctx.scalar(2.0);
        let t = ctx.scalar(3.0);
        let scaled = &a * &(&s * &t);
        assert_eq!(scaled.value()[2], Cplx::real(6.0));
        let u = &(&s + &t) - &s;
        assert_eq!(u.value(), Cplx::real(3.0));
        let n = -&s;
        assert_eq!(n.value(), Cplx::real(-2.0));
    }

    #[test]
    fn operator_chains_build_valid_ir() {
        let ctx = Ctx::new("ops");
        let a = ctx.vector([1.0, 2.0, 3.0, 4.0]);
        let b = ctx.vector([2.0, 2.0, 2.0, 2.0]);
        let _ = &(&(&a + &b) * &b) - &a;
        ctx.finish().validate().unwrap();
    }
}
