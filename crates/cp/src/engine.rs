//! Event-driven propagation engine: modification events, prioritised
//! scheduling and the fixpoint loop.
//!
//! Propagators are owned by the [`Engine`]; each registers (variable,
//! event-mask) watches via [`Propagator::subscribe`]. When a watched
//! variable's domain shrinks, the store logs a classified
//! [`DomainEvent`]; the engine wakes only the propagators whose mask
//! intersects the event, records the *tag* of the watch that fired (so a
//! propagator can tell which of its tasks/rects/terms moved), and queues
//! the propagator in one of three priority tiers — cheap arithmetic
//! filtering runs to fixpoint before expensive global constraints fire.
//! [`Engine::fixpoint`] runs until no queued propagator remains or some
//! domain empties.
//!
//! Scheduling is deterministic: tiers are FIFO, tiers drain lowest-first,
//! and wake tags are delivered in sorted order, so a fixed instance
//! always produces the same propagation sequence (and hence the same
//! trace stream).

use crate::domain::DomainEvent;
use crate::store::{Fail, PropResult, Store, VarId};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Sentinel tag for untagged watches ([`Subscriptions::watch`]).
const UNTAGGED: u32 = u32::MAX;

/// Number of scheduling tiers (one per [`Priority`] variant).
const NUM_TIERS: usize = 3;

/// How many propagator runs may elapse between cancellation polls inside
/// a fixpoint. Small enough that a heavy global propagator chain aborts
/// in microseconds, large enough that the atomic load never shows up in
/// profiles.
const CANCEL_POLL_PERIOD: u32 = 32;

/// Scheduling cost class of a propagator; cheaper tiers drain first.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Priority {
    /// Binary/ternary arithmetic: O(1)-ish bound rules.
    Arith = 0,
    /// Linear (in)equalities and reified/conditional constraints.
    Linear = 1,
    /// Global constraints: `Cumulative`, `Disjunctive`, `Diff2`, `Table`,
    /// `AllDifferent`.
    Global = 2,
}

/// Watch registrations collected from [`Propagator::subscribe`].
///
/// The engine owns one reusable buffer, so subscribing allocates nothing
/// in the steady state.
#[derive(Default)]
pub struct Subscriptions {
    entries: Vec<(VarId, DomainEvent, u32)>,
}

impl Subscriptions {
    /// Wake the propagator whenever `v` fires an event in `mask`.
    /// The wake carries no tag: the propagator sees a full rescan.
    pub fn watch(&mut self, v: VarId, mask: DomainEvent) {
        self.entries.push((v, mask, UNTAGGED));
    }

    /// Like [`Subscriptions::watch`], but the wake records `tag` (an
    /// index meaningful to the propagator: a task, rectangle or term
    /// position) so it can filter incrementally.
    pub fn watch_tagged(&mut self, v: VarId, mask: DomainEvent, tag: u32) {
        assert_ne!(tag, UNTAGGED, "tag value reserved");
        self.entries.push((v, mask, tag));
    }
}

/// Why a propagator is running: the dirty-variable information
/// accumulated since its previous run.
pub struct Wake<'a> {
    all: bool,
    tags: &'a [u32],
    rerun_in_round: bool,
}

impl Wake<'_> {
    /// True if the propagator must rescan everything: its first run, a
    /// [`Engine::schedule_all`], an untagged watch fired, or the engine
    /// is in FIFO-baseline mode.
    #[inline]
    pub fn rescan(&self) -> bool {
        self.all
    }

    /// Sorted, deduplicated tags of the tagged watches that fired since
    /// this propagator's previous run. Empty when [`Wake::rescan`] is
    /// true (the set is not tracked on full rescans).
    #[inline]
    pub fn tags(&self) -> &[u32] {
        self.tags
    }

    /// True if this propagator already ran earlier in the *same*
    /// [`Engine::fixpoint`] call. Internal caches built during a run are
    /// only valid on such re-runs: between fixpoint calls the search may
    /// have backtracked, which silently rewinds domains.
    #[inline]
    pub fn rerun_in_round(&self) -> bool {
        self.rerun_in_round
    }
}

/// A filtering algorithm attached to a set of variables.
///
/// `propagate` must be *monotone* (only ever remove values); idempotence
/// is not required — the engine reaches a fixpoint by re-queueing on
/// change. A propagator that *is* idempotent (one run reaches its own
/// fixpoint) should say so via [`Propagator::idempotent`]; the engine
/// then skips the self-requeue its own prunings would cause.
pub trait Propagator: Send {
    /// Register the (variable, event-mask) watches that wake this
    /// propagator. Called once at [`Engine::post`] time; the mask must be
    /// *complete*: any event that could enable new pruning must wake it.
    fn subscribe(&self, subs: &mut Subscriptions);

    /// Filter domains; `Err(Fail)` signals inconsistency of the node.
    /// `wake` describes what changed since the previous run and may be
    /// used to skip provably clean work — never to prune differently.
    fn propagate(&mut self, store: &mut Store, wake: &Wake<'_>) -> PropResult;

    /// Diagnostic name.
    fn name(&self) -> &'static str {
        "propagator"
    }

    /// Scheduling tier. Defaults to the middle tier.
    fn priority(&self) -> Priority {
        Priority::Linear
    }

    /// True if a single `propagate` run always reaches this propagator's
    /// own fixpoint, so events produced by its own run need not requeue
    /// it.
    fn idempotent(&self) -> bool {
        false
    }
}

/// Identifier of a registered propagator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PropId(pub u32);

/// Per-propagator accounting, indexed by [`PropId`].
///
/// Counters are always maintained (a few integer adds per invocation);
/// wall-clock attribution is off by default because reading the clock
/// twice per propagation is the one genuinely expensive part — enable it
/// with [`Engine::enable_profiling`].
#[derive(Clone, Copy, Debug)]
pub struct PropProfile {
    /// Diagnostic name as reported by [`Propagator::name`].
    pub name: &'static str,
    /// Times `propagate` ran.
    pub invocations: u64,
    /// Wake notifications delivered (event matched the mask). A wake on
    /// an already-queued propagator counts once more here but leads to a
    /// single invocation, so `wakes ≥ invocations` over event-driven
    /// runs.
    pub wakes: u64,
    /// Invocations that completed without pruning anything.
    pub no_op_runs: u64,
    /// Domain mutations performed across all invocations.
    pub prunings: u64,
    /// Invocations that ended in `Err(Fail)`.
    pub failures: u64,
    /// Cumulative wall time; zero unless timing was enabled.
    pub time: Duration,
}

/// Render aggregated profile rows (as from [`Engine::profile_by_name`])
/// plus a total line. `total_invocations` is the engine's propagation
/// count, which the invocation column must sum to.
pub fn render_profile_table(rows: &[PropProfile], total_invocations: u64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<24} {:>12} {:>12} {:>12} {:>12} {:>10} {:>12}",
        "propagator", "invocations", "wakes", "no_op_runs", "prunings", "failures", "time_us"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<24} {:>12} {:>12} {:>12} {:>12} {:>10} {:>12}",
            r.name,
            r.invocations,
            r.wakes,
            r.no_op_runs,
            r.prunings,
            r.failures,
            r.time.as_micros()
        );
    }
    let _ = writeln!(
        out,
        "{:<24} {:>12} {:>12} {:>12} {:>12} {:>10} {:>12}",
        "total",
        total_invocations,
        rows.iter().map(|r| r.wakes).sum::<u64>(),
        rows.iter().map(|r| r.no_op_runs).sum::<u64>(),
        rows.iter().map(|r| r.prunings).sum::<u64>(),
        rows.iter().map(|r| r.failures).sum::<u64>(),
        rows.iter().map(|r| r.time.as_micros()).sum::<u128>()
    );
    out
}

/// One watch entry on a variable's subscriber list.
#[derive(Clone, Copy)]
struct SubEntry {
    prop: u32,
    mask: DomainEvent,
    tag: u32,
}

/// Dirty info accumulated for a queued propagator since its last run.
#[derive(Default)]
struct Pending {
    /// An untagged watch fired (or the run was forced): full rescan.
    all: bool,
    /// Distinct tags fired, in arrival order (sorted before delivery).
    tags: Vec<u32>,
    /// Bitset over tag values backing O(1) dedup of `tags`.
    seen: Vec<u64>,
}

impl Pending {
    fn note(&mut self, tag: u32) {
        if tag == UNTAGGED {
            self.all = true;
            return;
        }
        let (word, bit) = (tag as usize / 64, tag as usize % 64);
        if word >= self.seen.len() {
            self.seen.resize(word + 1, 0);
        }
        if self.seen[word] & (1 << bit) == 0 {
            self.seen[word] |= 1 << bit;
            self.tags.push(tag);
        }
    }

    /// Reset, keeping both buffers allocated. O(|tags|), not O(|seen|).
    fn clear(&mut self) {
        self.all = false;
        for &t in &self.tags {
            self.seen[t as usize / 64] &= !(1 << (t as usize % 64));
        }
        self.tags.clear();
    }
}

pub struct Engine {
    props: Vec<Box<dyn Propagator>>,
    /// var index → watch entries.
    subs: Vec<Vec<SubEntry>>,
    queued: Vec<bool>,
    /// One FIFO queue per priority tier; lowest tier drains first.
    tiers: [VecDeque<u32>; NUM_TIERS],
    /// Tier index per propagator (resolved once at post time).
    tier_of: Vec<u8>,
    idempotent: Vec<bool>,
    /// Per-propagator dirty info, parallel to `props`.
    pending: Vec<Pending>,
    /// Fixpoint round a propagator last ran in, parallel to `props`.
    last_run_round: Vec<u64>,
    /// Incremented on every `fixpoint` call; 0 = never.
    round: u64,
    /// Total number of `propagate` invocations (statistics).
    pub propagations: u64,
    /// Parallel to `props`.
    profiles: Vec<PropProfile>,
    /// When true, attribute wall time to each propagator run.
    timed_profiling: bool,
    /// When true, emulate the pre-event engine: a single FIFO queue, no
    /// event-mask filtering, no idempotence skips, full rescans only.
    fifo_baseline: bool,
    /// Cooperative cancellation, polled every [`CANCEL_POLL_PERIOD`]
    /// propagator runs inside [`Engine::fixpoint`] so a long fixpoint
    /// aborts promptly. `None` (the default) costs one branch per run.
    cancel: Option<crate::cancel::CancelToken>,
    /// Reused across `post` calls so subscribing does not allocate.
    sub_buf: Subscriptions,
}

impl Engine {
    pub fn new() -> Self {
        Engine {
            props: Vec::new(),
            subs: Vec::new(),
            queued: Vec::new(),
            tiers: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            tier_of: Vec::new(),
            idempotent: Vec::new(),
            pending: Vec::new(),
            last_run_round: Vec::new(),
            round: 0,
            propagations: 0,
            profiles: Vec::new(),
            timed_profiling: false,
            fifo_baseline: false,
            cancel: None,
            sub_buf: Subscriptions::default(),
        }
    }

    /// Install (or clear) the cancellation token polled inside
    /// [`Engine::fixpoint`]. A cancelled fixpoint cleans up exactly like a
    /// propagation failure — queue flushed, pending events dropped — and
    /// returns `Err(Fail)`; callers that installed a token must check it
    /// to tell cancellation from genuine refutation.
    pub fn set_cancel(&mut self, token: Option<crate::cancel::CancelToken>) {
        self.cancel = token;
    }

    /// Turn on per-propagator wall-time attribution (counters are always
    /// on). Call before solving; timing starts from the next fixpoint.
    pub fn enable_profiling(&mut self) {
        self.timed_profiling = true;
    }

    /// Disable event-mask filtering, priority tiers, idempotence skips
    /// and incremental wake info: every change wakes every subscriber
    /// into one FIFO queue with a full rescan. This reproduces the
    /// pre-event engine and exists as the comparison baseline for the
    /// differential suite and A/B profiling. Call before posting so the
    /// initial schedule is pure FIFO too.
    pub fn set_fifo_baseline(&mut self, on: bool) {
        self.fifo_baseline = on;
    }

    /// True if [`Engine::set_fifo_baseline`] turned the baseline mode on.
    pub fn is_fifo_baseline(&self) -> bool {
        self.fifo_baseline
    }

    /// Per-propagator accounting, one entry per registered propagator in
    /// [`PropId`] order.
    pub fn profiles(&self) -> &[PropProfile] {
        &self.profiles
    }

    /// Profiles aggregated by propagator name, sorted by descending cost
    /// (time when timing was on, else prunings).
    pub fn profile_by_name(&self) -> Vec<PropProfile> {
        let mut by_name: Vec<PropProfile> = Vec::new();
        for p in &self.profiles {
            match by_name.iter_mut().find(|a| a.name == p.name) {
                Some(a) => {
                    a.invocations += p.invocations;
                    a.wakes += p.wakes;
                    a.no_op_runs += p.no_op_runs;
                    a.prunings += p.prunings;
                    a.failures += p.failures;
                    a.time += p.time;
                }
                None => by_name.push(*p),
            }
        }
        by_name.sort_by(|a, b| {
            (b.time, b.prunings, b.invocations).cmp(&(a.time, a.prunings, a.invocations))
        });
        by_name
    }

    /// Render the sorted "propagator flamegraph" table.
    pub fn profile_table(&self) -> String {
        render_profile_table(&self.profile_by_name(), self.propagations)
    }

    pub fn num_propagators(&self) -> usize {
        self.props.len()
    }

    /// Register a propagator and schedule its first (full-rescan) run.
    pub fn post(&mut self, p: Box<dyn Propagator>, store: &Store) -> PropId {
        let id = self.props.len() as u32;
        let mut buf = std::mem::take(&mut self.sub_buf);
        buf.entries.clear();
        p.subscribe(&mut buf);
        if self.subs.len() < store.num_vars() {
            self.subs.resize_with(store.num_vars(), Vec::new);
        }
        for &(v, mask, tag) in &buf.entries {
            debug_assert!(v.idx() < store.num_vars(), "unknown var in {}", p.name());
            debug_assert!(!mask.is_empty(), "empty event mask in {}", p.name());
            self.subs[v.idx()].push(SubEntry {
                prop: id,
                mask,
                tag,
            });
        }
        self.sub_buf = buf;
        let tier = if self.fifo_baseline {
            0
        } else {
            p.priority() as u8
        };
        self.tier_of.push(tier);
        self.idempotent.push(p.idempotent());
        self.profiles.push(PropProfile {
            name: p.name(),
            invocations: 0,
            wakes: 0,
            no_op_runs: 0,
            prunings: 0,
            failures: 0,
            time: Duration::ZERO,
        });
        self.props.push(p);
        self.queued.push(true);
        self.pending.push(Pending {
            all: true,
            ..Pending::default()
        });
        self.last_run_round.push(0);
        self.tiers[tier as usize].push_back(id);
        PropId(id)
    }

    fn enqueue(&mut self, id: u32) {
        if !self.queued[id as usize] {
            self.queued[id as usize] = true;
            self.tiers[self.tier_of[id as usize] as usize].push_back(id);
        }
    }

    /// Deliver the store's modification log to subscribers. `just_ran`
    /// names the propagator whose run produced these events (if any), so
    /// an idempotent propagator is not requeued by its own prunings.
    fn drain_events(&mut self, store: &mut Store, just_ran: Option<u32>) {
        if !store.has_events() {
            return;
        }
        for (var, ev) in store.take_events() {
            // Vars created after the last `post` have no subscription slot.
            if (var as usize) >= self.subs.len() {
                continue;
            }
            let entries = std::mem::take(&mut self.subs[var as usize]);
            for e in &entries {
                if !self.fifo_baseline {
                    if !ev.intersects(e.mask) {
                        continue;
                    }
                    if Some(e.prop) == just_ran && self.idempotent[e.prop as usize] {
                        continue; // at its own fixpoint already
                    }
                }
                self.profiles[e.prop as usize].wakes += 1;
                self.pending[e.prop as usize].note(e.tag);
                self.enqueue(e.prop);
            }
            self.subs[var as usize] = entries;
        }
    }

    /// Pop the next propagator to run: lowest non-empty tier, FIFO
    /// within the tier.
    fn pop_next(&mut self) -> Option<u32> {
        self.tiers.iter_mut().find_map(|t| t.pop_front())
    }

    /// Run propagation to fixpoint. On failure, the queue is flushed so the
    /// engine is clean for the post-backtrack state. A pending cancellation
    /// (see [`Engine::set_cancel`]) takes the same cleanup path and also
    /// returns `Err(Fail)`.
    pub fn fixpoint(&mut self, store: &mut Store) -> PropResult {
        self.round += 1;
        self.drain_events(store, None);
        let mut runs_until_poll = CANCEL_POLL_PERIOD;
        while let Some(id) = self.pop_next() {
            if let Some(c) = &self.cancel {
                runs_until_poll -= 1;
                if runs_until_poll == 0 {
                    runs_until_poll = CANCEL_POLL_PERIOD;
                    if c.is_cancelled() {
                        self.reset_queue();
                        store.take_events();
                        return Err(Fail);
                    }
                }
            }
            let idx = id as usize;
            self.queued[idx] = false;
            self.propagations += 1;
            let changes_before = store.change_count();
            let t0 = if self.timed_profiling {
                Some(Instant::now())
            } else {
                None
            };
            let mut pending = std::mem::take(&mut self.pending[idx]);
            pending.tags.sort_unstable();
            let wake = Wake {
                all: pending.all || self.fifo_baseline,
                tags: &pending.tags,
                rerun_in_round: self.last_run_round[idx] == self.round,
            };
            self.last_run_round[idx] = self.round;
            // Temporarily move the propagator out to satisfy the borrow
            // checker while it mutates the store.
            let mut p = std::mem::replace(&mut self.props[idx], Box::new(NoOp));
            let r = p.propagate(store, &wake);
            self.props[idx] = p;
            pending.clear();
            self.pending[idx] = pending;
            let prof = &mut self.profiles[idx];
            prof.invocations += 1;
            let pruned = store.change_count() - changes_before;
            prof.prunings += pruned;
            match r {
                Ok(()) if pruned == 0 => prof.no_op_runs += 1,
                Err(Fail) => prof.failures += 1,
                Ok(()) => {}
            }
            if let Some(t0) = t0 {
                prof.time += t0.elapsed();
            }
            match r {
                Ok(()) => self.drain_events(store, Some(id)),
                Err(Fail) => {
                    self.reset_queue();
                    store.take_events();
                    return Err(Fail);
                }
            }
        }
        Ok(())
    }

    /// Schedule every propagator for a full rescan (used after posting
    /// bound tightenings at a search restart boundary).
    pub fn schedule_all(&mut self) {
        for id in 0..self.props.len() as u32 {
            self.pending[id as usize].all = true;
            self.enqueue(id);
        }
    }

    /// Flush every tier and the pending dirty info in one pass over the
    /// queued entries (no per-element pops).
    fn reset_queue(&mut self) {
        let Engine {
            tiers,
            queued,
            pending,
            ..
        } = self;
        for tier in tiers.iter_mut() {
            for &id in tier.iter() {
                queued[id as usize] = false;
                pending[id as usize].clear();
            }
            tier.clear();
        }
    }
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

struct NoOp;
impl Propagator for NoOp {
    fn subscribe(&self, _: &mut Subscriptions) {}
    fn propagate(&mut self, _: &mut Store, _: &Wake<'_>) -> PropResult {
        Ok(())
    }
    fn name(&self) -> &'static str {
        "noop"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// x ≤ y, bounds-consistent.
    struct Leq {
        x: VarId,
        y: VarId,
    }
    impl Propagator for Leq {
        fn subscribe(&self, subs: &mut Subscriptions) {
            subs.watch(self.x, DomainEvent::MIN);
            subs.watch(self.y, DomainEvent::MAX);
        }
        fn propagate(&mut self, s: &mut Store, _: &Wake<'_>) -> PropResult {
            s.remove_above(self.x, s.max(self.y))?;
            s.remove_below(self.y, s.min(self.x))
        }
        fn name(&self) -> &'static str {
            "leq"
        }
        fn priority(&self) -> Priority {
            Priority::Arith
        }
        fn idempotent(&self) -> bool {
            true
        }
    }

    #[test]
    fn fixpoint_chains_inequalities() {
        let mut s = Store::new();
        let a = s.new_var(0, 10);
        let b = s.new_var(0, 10);
        let c = s.new_var(0, 10);
        let mut e = Engine::new();
        e.post(Box::new(Leq { x: a, y: b }), &s);
        e.post(Box::new(Leq { x: b, y: c }), &s);
        e.fixpoint(&mut s).unwrap();
        s.push_level();
        s.remove_above(c, 4).unwrap();
        e.fixpoint(&mut s).unwrap();
        assert_eq!(s.max(a), 4);
        assert_eq!(s.max(b), 4);
    }

    #[test]
    fn fixpoint_detects_failure_and_cleans_queue() {
        let mut s = Store::new();
        let a = s.new_var(5, 10);
        let b = s.new_var(0, 10);
        let mut e = Engine::new();
        e.post(Box::new(Leq { x: a, y: b }), &s);
        e.fixpoint(&mut s).unwrap();
        s.push_level();
        // Store-level ops stay legal; the *propagator* must detect that
        // a ∈ [8,10] cannot be ≤ b ∈ [5,6].
        s.remove_below(a, 8).unwrap();
        s.remove_above(b, 6).unwrap();
        assert_eq!(e.fixpoint(&mut s), Err(Fail));
        s.pop_level();
        // Engine must be reusable after failure.
        s.push_level();
        s.remove_above(b, 7).unwrap();
        e.fixpoint(&mut s).unwrap();
        assert_eq!(s.max(a), 7);
    }

    #[test]
    fn propagator_runs_once_per_wakeup_batch() {
        let mut s = Store::new();
        let a = s.new_var(0, 10);
        let b = s.new_var(0, 10);
        let mut e = Engine::new();
        e.post(Box::new(Leq { x: a, y: b }), &s);
        e.fixpoint(&mut s).unwrap();
        let before = e.propagations;
        s.push_level();
        // Two changes to watched vars in one batch → at most 2 runs
        // (initial + requeue), not 4.
        s.remove_above(b, 8).unwrap();
        s.remove_below(a, 1).unwrap();
        e.fixpoint(&mut s).unwrap();
        assert!(e.propagations - before <= 2);
    }

    #[test]
    fn event_masks_filter_wakeups() {
        let mut s = Store::new();
        let a = s.new_var(0, 10);
        let b = s.new_var(0, 10);
        let mut e = Engine::new();
        // Leq watches a:MIN and b:MAX only.
        e.post(Box::new(Leq { x: a, y: b }), &s);
        e.fixpoint(&mut s).unwrap();
        let before = e.propagations;
        s.push_level();
        // MAX change on a and MIN change on b: both outside the mask.
        s.remove_above(a, 9).unwrap();
        s.remove_below(b, 1).unwrap();
        e.fixpoint(&mut s).unwrap();
        assert_eq!(e.propagations, before, "masked-out events must not wake");
        // ...but the FIFO baseline ignores masks and does wake.
        let mut s2 = Store::new();
        let a2 = s2.new_var(0, 10);
        let b2 = s2.new_var(0, 10);
        let mut e2 = Engine::new();
        e2.set_fifo_baseline(true);
        e2.post(Box::new(Leq { x: a2, y: b2 }), &s2);
        e2.fixpoint(&mut s2).unwrap();
        let before2 = e2.propagations;
        s2.push_level();
        s2.remove_above(a2, 9).unwrap();
        e2.fixpoint(&mut s2).unwrap();
        assert_eq!(e2.propagations, before2 + 1);
    }

    #[test]
    fn idempotent_propagator_not_requeued_by_own_prunings() {
        // Watches both bounds of both vars, prunes on every first run.
        struct Shrink {
            x: VarId,
            idem: bool,
        }
        impl Propagator for Shrink {
            fn subscribe(&self, subs: &mut Subscriptions) {
                subs.watch(self.x, DomainEvent::ANY);
            }
            fn propagate(&mut self, s: &mut Store, _: &Wake<'_>) -> PropResult {
                let m = s.min(self.x);
                if s.max(self.x) > m {
                    s.remove_above(self.x, s.max(self.x) - 1)?;
                }
                Ok(())
            }
            fn name(&self) -> &'static str {
                "shrink"
            }
            fn idempotent(&self) -> bool {
                self.idem
            }
        }
        for (idem, expected) in [(true, 1u64), (false, 11u64)] {
            let mut s = Store::new();
            let x = s.new_var(0, 10);
            let mut e = Engine::new();
            e.post(Box::new(Shrink { x, idem }), &s);
            e.fixpoint(&mut s).unwrap();
            assert_eq!(e.propagations, expected, "idem={idem}");
        }
    }

    #[test]
    fn priority_tiers_run_cheap_before_global() {
        use std::sync::{Arc, Mutex};
        struct Recorder {
            x: VarId,
            label: &'static str,
            prio: Priority,
            log: Arc<Mutex<Vec<&'static str>>>,
        }
        impl Propagator for Recorder {
            fn subscribe(&self, subs: &mut Subscriptions) {
                subs.watch(self.x, DomainEvent::ANY);
            }
            fn propagate(&mut self, _: &mut Store, _: &Wake<'_>) -> PropResult {
                self.log.lock().unwrap().push(self.label);
                Ok(())
            }
            fn priority(&self) -> Priority {
                self.prio
            }
        }
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut s = Store::new();
        let x = s.new_var(0, 10);
        let mut e = Engine::new();
        // Posted most-expensive-first; must still run cheapest-first.
        for (label, prio) in [
            ("global", Priority::Global),
            ("linear", Priority::Linear),
            ("arith", Priority::Arith),
        ] {
            e.post(
                Box::new(Recorder {
                    x,
                    label,
                    prio,
                    log: Arc::clone(&log),
                }),
                &s,
            );
        }
        e.fixpoint(&mut s).unwrap();
        assert_eq!(*log.lock().unwrap(), vec!["arith", "linear", "global"]);
    }

    #[test]
    fn tagged_wakes_deliver_dirty_indices() {
        use std::sync::{Arc, Mutex};
        struct TagSpy {
            vars: Vec<VarId>,
            seen: Arc<Mutex<Vec<Vec<u32>>>>,
        }
        impl Propagator for TagSpy {
            fn subscribe(&self, subs: &mut Subscriptions) {
                for (i, &v) in self.vars.iter().enumerate() {
                    subs.watch_tagged(v, DomainEvent::ANY, i as u32);
                }
            }
            fn propagate(&mut self, _: &mut Store, w: &Wake<'_>) -> PropResult {
                if !w.rescan() {
                    self.seen.lock().unwrap().push(w.tags().to_vec());
                }
                Ok(())
            }
        }
        let seen = Arc::new(Mutex::new(Vec::new()));
        let mut s = Store::new();
        let vars: Vec<VarId> = (0..4).map(|_| s.new_var(0, 10)).collect();
        let mut e = Engine::new();
        e.post(
            Box::new(TagSpy {
                vars: vars.clone(),
                seen: Arc::clone(&seen),
            }),
            &s,
        );
        e.fixpoint(&mut s).unwrap(); // initial full rescan, not recorded
        s.push_level();
        s.remove_below(vars[3], 2).unwrap();
        s.remove_below(vars[1], 2).unwrap();
        s.remove_above(vars[3], 8).unwrap(); // duplicate var: tag deduped
        e.fixpoint(&mut s).unwrap();
        assert_eq!(*seen.lock().unwrap(), vec![vec![1, 3]]);
    }
}

#[cfg(test)]
mod profile_tests {
    use super::*;

    struct Leq {
        x: VarId,
        y: VarId,
    }
    impl Propagator for Leq {
        fn subscribe(&self, subs: &mut Subscriptions) {
            subs.watch(self.x, DomainEvent::MIN);
            subs.watch(self.y, DomainEvent::MAX);
        }
        fn propagate(&mut self, s: &mut Store, _: &Wake<'_>) -> PropResult {
            s.remove_above(self.x, s.max(self.y))?;
            s.remove_below(self.y, s.min(self.x))
        }
        fn name(&self) -> &'static str {
            "leq"
        }
    }

    #[test]
    fn invocations_sum_to_engine_propagations() {
        let mut s = Store::new();
        let a = s.new_var(0, 10);
        let b = s.new_var(0, 10);
        let c = s.new_var(0, 10);
        let mut e = Engine::new();
        e.post(Box::new(Leq { x: a, y: b }), &s);
        e.post(Box::new(Leq { x: b, y: c }), &s);
        e.fixpoint(&mut s).unwrap();
        s.push_level();
        s.remove_above(c, 4).unwrap();
        e.fixpoint(&mut s).unwrap();
        let sum: u64 = e.profiles().iter().map(|p| p.invocations).sum();
        assert_eq!(sum, e.propagations);
        assert!(sum > 0);
    }

    #[test]
    fn prunings_sum_to_propagator_driven_store_changes() {
        // At the root fixpoint every domain mutation comes from a
        // propagator, so profile prunings must equal the store's change
        // counter exactly.
        let mut s = Store::new();
        let a = s.new_var(3, 10);
        let b = s.new_var(0, 8);
        let c = s.new_var(0, 5);
        let mut e = Engine::new();
        e.post(Box::new(Leq { x: a, y: b }), &s);
        e.post(Box::new(Leq { x: b, y: c }), &s);
        e.fixpoint(&mut s).unwrap();
        let prunings: u64 = e.profiles().iter().map(|p| p.prunings).sum();
        assert_eq!(prunings, s.change_count());
        assert!(prunings > 0, "chained bounds must have pruned something");
    }

    #[test]
    fn failures_are_attributed_and_timing_is_gated() {
        let mut s = Store::new();
        let a = s.new_var(5, 10);
        let b = s.new_var(0, 10);
        let mut e = Engine::new();
        e.post(Box::new(Leq { x: a, y: b }), &s);
        e.fixpoint(&mut s).unwrap();
        assert_eq!(
            e.profiles()[0].time,
            Duration::ZERO,
            "timing off by default"
        );
        s.push_level();
        s.remove_below(a, 8).unwrap();
        s.remove_above(b, 6).unwrap();
        assert_eq!(e.fixpoint(&mut s), Err(Fail));
        assert_eq!(e.profiles()[0].failures, 1);
        s.pop_level();

        e.enable_profiling();
        s.push_level();
        s.remove_above(b, 5).unwrap();
        e.fixpoint(&mut s).unwrap();
        assert!(e.profiles()[0].time > Duration::ZERO);
    }

    #[test]
    fn wakes_and_no_op_runs_are_counted() {
        let mut s = Store::new();
        let a = s.new_var(0, 10);
        let b = s.new_var(0, 10);
        let mut e = Engine::new();
        e.post(Box::new(Leq { x: a, y: b }), &s);
        e.fixpoint(&mut s).unwrap();
        // Initial run on full domains prunes nothing.
        assert_eq!(e.profiles()[0].no_op_runs, 1);
        assert_eq!(e.profiles()[0].wakes, 0, "initial schedule is not a wake");
        s.push_level();
        s.remove_above(b, 8).unwrap(); // matches b:MAX → one wake
        e.fixpoint(&mut s).unwrap();
        assert_eq!(e.profiles()[0].wakes, 1);
        // That run pruned a's max, so no new no-op.
        assert_eq!(e.profiles()[0].no_op_runs, 1);
        assert_eq!(e.profiles()[0].invocations, 2);
    }

    #[test]
    fn table_aggregates_by_name() {
        let mut s = Store::new();
        let a = s.new_var(0, 10);
        let b = s.new_var(0, 10);
        let c = s.new_var(0, 10);
        let mut e = Engine::new();
        e.post(Box::new(Leq { x: a, y: b }), &s);
        e.post(Box::new(Leq { x: b, y: c }), &s);
        e.fixpoint(&mut s).unwrap();
        let rows = e.profile_by_name();
        assert_eq!(rows.len(), 1, "same-name propagators merge");
        assert_eq!(rows[0].name, "leq");
        assert_eq!(rows[0].invocations, e.propagations);
        let table = e.profile_table();
        assert!(table.contains("leq"));
        assert!(table.contains("total"));
        assert!(table.contains("no_op_runs"));
        assert!(table.contains("wakes"));
    }
}

#[cfg(test)]
mod schedule_all_tests {
    use super::*;
    use crate::store::Store;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    struct Counter(Arc<AtomicU32>);
    impl Propagator for Counter {
        fn subscribe(&self, _: &mut Subscriptions) {}
        fn propagate(&mut self, _: &mut Store, _: &Wake<'_>) -> PropResult {
            self.0.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }
        fn name(&self) -> &'static str {
            "counter"
        }
    }

    #[test]
    fn schedule_all_requeues_every_propagator() {
        let mut s = Store::new();
        let _x = s.new_var(0, 1);
        let counts = [Arc::new(AtomicU32::new(0)), Arc::new(AtomicU32::new(0))];
        let mut e = Engine::new();
        e.post(Box::new(Counter(Arc::clone(&counts[0]))), &s);
        e.post(Box::new(Counter(Arc::clone(&counts[1]))), &s);
        e.fixpoint(&mut s).unwrap(); // initial run: each once
        e.schedule_all();
        e.fixpoint(&mut s).unwrap(); // once more each
        assert_eq!(counts[0].load(Ordering::Relaxed), 2);
        assert_eq!(counts[1].load(Ordering::Relaxed), 2);
        assert_eq!(e.num_propagators(), 2);
    }
}
