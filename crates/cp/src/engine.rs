//! Propagation engine: the propagator trait, subscriptions and the
//! fixpoint loop.
//!
//! Propagators are owned by the [`Engine`]; each declares the variables it
//! watches via [`Propagator::vars`]. Whenever a watched variable's domain
//! shrinks, the propagator is scheduled (at most once — the queue is a set)
//! and the engine runs [`Engine::fixpoint`] until no domain changes remain
//! or some domain empties.

use crate::store::{Fail, PropResult, Store, VarId};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// A filtering algorithm attached to a set of variables.
///
/// `propagate` must be *monotone* (only ever remove values) and is re-run
/// from scratch on each wake-up; idempotence is not required — the engine
/// reaches a fixpoint by re-queueing on change.
pub trait Propagator: Send {
    /// The variables whose changes wake this propagator.
    fn vars(&self) -> Vec<VarId>;

    /// Filter domains; `Err(Fail)` signals inconsistency of the node.
    fn propagate(&mut self, store: &mut Store) -> PropResult;

    /// Diagnostic name.
    fn name(&self) -> &'static str {
        "propagator"
    }
}

/// Identifier of a registered propagator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PropId(pub u32);

/// Per-propagator accounting, indexed by [`PropId`].
///
/// Counters are always maintained (two integer adds per invocation);
/// wall-clock attribution is off by default because reading the clock
/// twice per propagation is the one genuinely expensive part — enable it
/// with [`Engine::enable_profiling`].
#[derive(Clone, Copy, Debug)]
pub struct PropProfile {
    /// Diagnostic name as reported by [`Propagator::name`].
    pub name: &'static str,
    /// Times `propagate` ran.
    pub invocations: u64,
    /// Domain mutations performed across all invocations.
    pub prunings: u64,
    /// Invocations that ended in `Err(Fail)`.
    pub failures: u64,
    /// Cumulative wall time; zero unless timing was enabled.
    pub time: Duration,
}

/// Render aggregated profile rows (as from [`Engine::profile_by_name`])
/// plus a total line. `total_invocations` is the engine's propagation
/// count, which the invocation column must sum to.
pub fn render_profile_table(rows: &[PropProfile], total_invocations: u64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<24} {:>12} {:>12} {:>10} {:>12}",
        "propagator", "invocations", "prunings", "failures", "time_us"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<24} {:>12} {:>12} {:>10} {:>12}",
            r.name,
            r.invocations,
            r.prunings,
            r.failures,
            r.time.as_micros()
        );
    }
    let _ = writeln!(
        out,
        "{:<24} {:>12} {:>12} {:>10} {:>12}",
        "total",
        total_invocations,
        rows.iter().map(|r| r.prunings).sum::<u64>(),
        rows.iter().map(|r| r.failures).sum::<u64>(),
        rows.iter().map(|r| r.time.as_micros()).sum::<u128>()
    );
    out
}

pub struct Engine {
    props: Vec<Box<dyn Propagator>>,
    /// var index → subscribed propagator ids.
    subs: Vec<Vec<u32>>,
    queued: Vec<bool>,
    queue: VecDeque<u32>,
    /// Total number of `propagate` invocations (statistics).
    pub propagations: u64,
    /// Parallel to `props`.
    profiles: Vec<PropProfile>,
    /// When true, attribute wall time to each propagator run.
    timed_profiling: bool,
}

impl Engine {
    pub fn new() -> Self {
        Engine {
            props: Vec::new(),
            subs: Vec::new(),
            queued: Vec::new(),
            queue: VecDeque::new(),
            propagations: 0,
            profiles: Vec::new(),
            timed_profiling: false,
        }
    }

    /// Turn on per-propagator wall-time attribution (counters are always
    /// on). Call before solving; timing starts from the next fixpoint.
    pub fn enable_profiling(&mut self) {
        self.timed_profiling = true;
    }

    /// Per-propagator accounting, one entry per registered propagator in
    /// [`PropId`] order.
    pub fn profiles(&self) -> &[PropProfile] {
        &self.profiles
    }

    /// Profiles aggregated by propagator name, sorted by descending cost
    /// (time when timing was on, else prunings).
    pub fn profile_by_name(&self) -> Vec<PropProfile> {
        let mut by_name: Vec<PropProfile> = Vec::new();
        for p in &self.profiles {
            match by_name.iter_mut().find(|a| a.name == p.name) {
                Some(a) => {
                    a.invocations += p.invocations;
                    a.prunings += p.prunings;
                    a.failures += p.failures;
                    a.time += p.time;
                }
                None => by_name.push(*p),
            }
        }
        by_name.sort_by(|a, b| {
            (b.time, b.prunings, b.invocations).cmp(&(a.time, a.prunings, a.invocations))
        });
        by_name
    }

    /// Render the sorted "propagator flamegraph" table.
    pub fn profile_table(&self) -> String {
        render_profile_table(&self.profile_by_name(), self.propagations)
    }

    pub fn num_propagators(&self) -> usize {
        self.props.len()
    }

    /// Register a propagator and schedule its first run.
    pub fn post(&mut self, p: Box<dyn Propagator>, store: &Store) -> PropId {
        let id = self.props.len() as u32;
        for v in p.vars() {
            debug_assert!(v.idx() < store.num_vars(), "unknown var in {}", p.name());
            if self.subs.len() <= v.idx() {
                self.subs.resize(store.num_vars(), Vec::new());
            }
            self.subs[v.idx()].push(id);
        }
        if self.subs.len() < store.num_vars() {
            self.subs.resize(store.num_vars(), Vec::new());
        }
        self.profiles.push(PropProfile {
            name: p.name(),
            invocations: 0,
            prunings: 0,
            failures: 0,
            time: Duration::ZERO,
        });
        self.props.push(p);
        self.queued.push(true);
        self.queue.push_back(id);
        PropId(id)
    }

    fn enqueue(&mut self, id: u32) {
        if !self.queued[id as usize] {
            self.queued[id as usize] = true;
            self.queue.push_back(id);
        }
    }

    fn drain_dirty(&mut self, store: &mut Store) {
        if !store.has_dirty() {
            return;
        }
        for var in store.take_dirty() {
            // Vars created after the last `post` have no subscription slot.
            if (var as usize) >= self.subs.len() {
                continue;
            }
            let subs = std::mem::take(&mut self.subs[var as usize]);
            for &pid in &subs {
                self.enqueue(pid);
            }
            self.subs[var as usize] = subs;
        }
    }

    /// Run propagation to fixpoint. On failure, the queue is flushed so the
    /// engine is clean for the post-backtrack state.
    pub fn fixpoint(&mut self, store: &mut Store) -> PropResult {
        self.drain_dirty(store);
        while let Some(id) = self.queue.pop_front() {
            self.queued[id as usize] = false;
            self.propagations += 1;
            let changes_before = store.change_count();
            let t0 = if self.timed_profiling {
                Some(Instant::now())
            } else {
                None
            };
            // Temporarily move the propagator out to satisfy the borrow
            // checker while it mutates the store through `self`-adjacent
            // subscriptions.
            let mut p = std::mem::replace(&mut self.props[id as usize], Box::new(NoOp));
            let r = p.propagate(store);
            self.props[id as usize] = p;
            let prof = &mut self.profiles[id as usize];
            prof.invocations += 1;
            prof.prunings += store.change_count() - changes_before;
            if r.is_err() {
                prof.failures += 1;
            }
            if let Some(t0) = t0 {
                prof.time += t0.elapsed();
            }
            match r {
                Ok(()) => self.drain_dirty(store),
                Err(Fail) => {
                    self.reset_queue();
                    store.take_dirty();
                    return Err(Fail);
                }
            }
        }
        Ok(())
    }

    /// Schedule every propagator (used after posting bound tightenings at a
    /// search restart boundary).
    pub fn schedule_all(&mut self) {
        for id in 0..self.props.len() as u32 {
            self.enqueue(id);
        }
    }

    fn reset_queue(&mut self) {
        while let Some(id) = self.queue.pop_front() {
            self.queued[id as usize] = false;
        }
    }
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

struct NoOp;
impl Propagator for NoOp {
    fn vars(&self) -> Vec<VarId> {
        Vec::new()
    }
    fn propagate(&mut self, _: &mut Store) -> PropResult {
        Ok(())
    }
    fn name(&self) -> &'static str {
        "noop"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// x ≤ y, bounds-consistent.
    struct Leq {
        x: VarId,
        y: VarId,
    }
    impl Propagator for Leq {
        fn vars(&self) -> Vec<VarId> {
            vec![self.x, self.y]
        }
        fn propagate(&mut self, s: &mut Store) -> PropResult {
            s.remove_above(self.x, s.max(self.y))?;
            s.remove_below(self.y, s.min(self.x))
        }
        fn name(&self) -> &'static str {
            "leq"
        }
    }

    #[test]
    fn fixpoint_chains_inequalities() {
        let mut s = Store::new();
        let a = s.new_var(0, 10);
        let b = s.new_var(0, 10);
        let c = s.new_var(0, 10);
        let mut e = Engine::new();
        e.post(Box::new(Leq { x: a, y: b }), &s);
        e.post(Box::new(Leq { x: b, y: c }), &s);
        e.fixpoint(&mut s).unwrap();
        s.push_level();
        s.remove_above(c, 4).unwrap();
        e.fixpoint(&mut s).unwrap();
        assert_eq!(s.max(a), 4);
        assert_eq!(s.max(b), 4);
    }

    #[test]
    fn fixpoint_detects_failure_and_cleans_queue() {
        let mut s = Store::new();
        let a = s.new_var(5, 10);
        let b = s.new_var(0, 10);
        let mut e = Engine::new();
        e.post(Box::new(Leq { x: a, y: b }), &s);
        e.fixpoint(&mut s).unwrap();
        s.push_level();
        // Store-level ops stay legal; the *propagator* must detect that
        // a ∈ [8,10] cannot be ≤ b ∈ [5,6].
        s.remove_below(a, 8).unwrap();
        s.remove_above(b, 6).unwrap();
        assert_eq!(e.fixpoint(&mut s), Err(Fail));
        s.pop_level();
        // Engine must be reusable after failure.
        s.push_level();
        s.remove_above(b, 7).unwrap();
        e.fixpoint(&mut s).unwrap();
        assert_eq!(s.max(a), 7);
    }

    #[test]
    fn propagator_runs_once_per_wakeup_batch() {
        let mut s = Store::new();
        let a = s.new_var(0, 10);
        let b = s.new_var(0, 10);
        let mut e = Engine::new();
        e.post(Box::new(Leq { x: a, y: b }), &s);
        e.fixpoint(&mut s).unwrap();
        let before = e.propagations;
        s.push_level();
        // Two changes to watched vars in one batch → at most 2 runs
        // (initial + requeue), not 4.
        s.remove_above(b, 8).unwrap();
        s.remove_below(a, 1).unwrap();
        e.fixpoint(&mut s).unwrap();
        assert!(e.propagations - before <= 2);
    }
}

#[cfg(test)]
mod profile_tests {
    use super::*;

    struct Leq {
        x: VarId,
        y: VarId,
    }
    impl Propagator for Leq {
        fn vars(&self) -> Vec<VarId> {
            vec![self.x, self.y]
        }
        fn propagate(&mut self, s: &mut Store) -> PropResult {
            s.remove_above(self.x, s.max(self.y))?;
            s.remove_below(self.y, s.min(self.x))
        }
        fn name(&self) -> &'static str {
            "leq"
        }
    }

    #[test]
    fn invocations_sum_to_engine_propagations() {
        let mut s = Store::new();
        let a = s.new_var(0, 10);
        let b = s.new_var(0, 10);
        let c = s.new_var(0, 10);
        let mut e = Engine::new();
        e.post(Box::new(Leq { x: a, y: b }), &s);
        e.post(Box::new(Leq { x: b, y: c }), &s);
        e.fixpoint(&mut s).unwrap();
        s.push_level();
        s.remove_above(c, 4).unwrap();
        e.fixpoint(&mut s).unwrap();
        let sum: u64 = e.profiles().iter().map(|p| p.invocations).sum();
        assert_eq!(sum, e.propagations);
        assert!(sum > 0);
    }

    #[test]
    fn prunings_sum_to_propagator_driven_store_changes() {
        // At the root fixpoint every domain mutation comes from a
        // propagator, so profile prunings must equal the store's change
        // counter exactly.
        let mut s = Store::new();
        let a = s.new_var(3, 10);
        let b = s.new_var(0, 8);
        let c = s.new_var(0, 5);
        let mut e = Engine::new();
        e.post(Box::new(Leq { x: a, y: b }), &s);
        e.post(Box::new(Leq { x: b, y: c }), &s);
        e.fixpoint(&mut s).unwrap();
        let prunings: u64 = e.profiles().iter().map(|p| p.prunings).sum();
        assert_eq!(prunings, s.change_count());
        assert!(prunings > 0, "chained bounds must have pruned something");
    }

    #[test]
    fn failures_are_attributed_and_timing_is_gated() {
        let mut s = Store::new();
        let a = s.new_var(5, 10);
        let b = s.new_var(0, 10);
        let mut e = Engine::new();
        e.post(Box::new(Leq { x: a, y: b }), &s);
        e.fixpoint(&mut s).unwrap();
        assert_eq!(
            e.profiles()[0].time,
            Duration::ZERO,
            "timing off by default"
        );
        s.push_level();
        s.remove_below(a, 8).unwrap();
        s.remove_above(b, 6).unwrap();
        assert_eq!(e.fixpoint(&mut s), Err(Fail));
        assert_eq!(e.profiles()[0].failures, 1);
        s.pop_level();

        e.enable_profiling();
        s.push_level();
        s.remove_above(b, 5).unwrap();
        e.fixpoint(&mut s).unwrap();
        assert!(e.profiles()[0].time > Duration::ZERO);
    }

    #[test]
    fn table_aggregates_by_name() {
        let mut s = Store::new();
        let a = s.new_var(0, 10);
        let b = s.new_var(0, 10);
        let c = s.new_var(0, 10);
        let mut e = Engine::new();
        e.post(Box::new(Leq { x: a, y: b }), &s);
        e.post(Box::new(Leq { x: b, y: c }), &s);
        e.fixpoint(&mut s).unwrap();
        let rows = e.profile_by_name();
        assert_eq!(rows.len(), 1, "same-name propagators merge");
        assert_eq!(rows[0].name, "leq");
        assert_eq!(rows[0].invocations, e.propagations);
        let table = e.profile_table();
        assert!(table.contains("leq"));
        assert!(table.contains("total"));
    }
}

#[cfg(test)]
mod schedule_all_tests {
    use super::*;
    use crate::store::Store;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    struct Counter(Arc<AtomicU32>);
    impl Propagator for Counter {
        fn vars(&self) -> Vec<VarId> {
            Vec::new()
        }
        fn propagate(&mut self, _: &mut Store) -> PropResult {
            self.0.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }
        fn name(&self) -> &'static str {
            "counter"
        }
    }

    #[test]
    fn schedule_all_requeues_every_propagator() {
        let mut s = Store::new();
        let _x = s.new_var(0, 1);
        let counts = [Arc::new(AtomicU32::new(0)), Arc::new(AtomicU32::new(0))];
        let mut e = Engine::new();
        e.post(Box::new(Counter(Arc::clone(&counts[0]))), &s);
        e.post(Box::new(Counter(Arc::clone(&counts[1]))), &s);
        e.fixpoint(&mut s).unwrap(); // initial run: each once
        e.schedule_all();
        e.fixpoint(&mut s).unwrap(); // once more each
        assert_eq!(counts[0].load(Ordering::Relaxed), 2);
        assert_eq!(counts[1].load(Ordering::Relaxed), 2);
        assert_eq!(e.num_propagators(), 2);
    }
}
