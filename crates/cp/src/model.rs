//! The [`Model`] facade: a store plus an engine, with convenience
//! constructors for every constraint used by the scheduling model.

use crate::engine::{Engine, PropId, Propagator};
use crate::props::alldiff::AllDifferent;
use crate::props::basic::{DiffPlusC, MaxOf, NeqOffset, XPlusCEqY, XPlusCLeqY};
use crate::props::cumulative::{CumTask, Cumulative};
use crate::props::diff2::{Diff2, Rect};
use crate::props::disjunctive::{DisjTask, Disjunctive};
use crate::props::geometry::{ModChannel, SlotGeometry};
use crate::props::linear::{LinearEq, LinearLeq};
use crate::props::reify::{CondSameTime, GuardedPair, PageLineImplies};
use crate::props::table::Table;
use crate::store::{Store, VarId};

/// A constraint model: variables plus posted propagators.
pub struct Model {
    pub store: Store,
    pub engine: Engine,
}

impl Model {
    pub fn new() -> Self {
        Model {
            store: Store::new(),
            engine: Engine::new(),
        }
    }

    /// A model whose engine emulates the legacy FIFO scheduler: one
    /// queue, no event masks, no idempotence skips, every propagator
    /// rescans all of its variables. The reference configuration for
    /// differential tests and `--fifo` benchmark runs.
    pub fn with_fifo_baseline() -> Self {
        let mut m = Model::new();
        m.engine.set_fifo_baseline(true);
        m
    }

    // ---- variables --------------------------------------------------------

    pub fn new_var(&mut self, lo: i32, hi: i32) -> VarId {
        self.store.new_var(lo, hi)
    }

    pub fn new_var_named(&mut self, lo: i32, hi: i32, name: &str) -> VarId {
        self.store.new_var_named(lo, hi, name)
    }

    pub fn new_const(&mut self, v: i32) -> VarId {
        self.store.new_const(v)
    }

    // ---- raw posting ------------------------------------------------------

    pub fn post(&mut self, p: Box<dyn Propagator>) -> PropId {
        self.engine.post(p, &self.store)
    }

    // ---- convenience constraints ------------------------------------------

    /// `x + c ≤ y` — precedence (paper's constraint (1)).
    pub fn precedence(&mut self, x: VarId, c: i32, y: VarId) {
        self.post(Box::new(XPlusCLeqY { x, c, y }));
    }

    /// `y = x + c` (paper's constraint (4) with `c` = latency).
    pub fn eq_offset(&mut self, x: VarId, c: i32, y: VarId) {
        self.post(Box::new(XPlusCEqY { x, c, y }));
    }

    /// `x = y`.
    pub fn eq(&mut self, x: VarId, y: VarId) {
        self.eq_offset(x, 0, y);
    }

    /// `x ≠ y` (paper's constraint (3)).
    pub fn neq(&mut self, x: VarId, y: VarId) {
        self.post(Box::new(NeqOffset { x, y, c: 0 }));
    }

    /// `y = max(xs)` (constraints (5) and (10)).
    pub fn max_of(&mut self, xs: Vec<VarId>, y: VarId) {
        self.post(Box::new(MaxOf { xs, y }));
    }

    /// `y = x1 − x2 + c`.
    pub fn diff_plus_c(&mut self, x1: VarId, x2: VarId, c: i32, y: VarId) {
        self.post(Box::new(DiffPlusC { x1, x2, c, y }));
    }

    /// `Σ aᵢxᵢ ≤ c`.
    pub fn linear_leq(&mut self, terms: Vec<(i64, VarId)>, c: i64) {
        self.post(Box::new(LinearLeq::new(terms, c)));
    }

    /// `Σ aᵢxᵢ = c`.
    pub fn linear_eq(&mut self, terms: Vec<(i64, VarId)>, c: i64) {
        self.post(Box::new(LinearEq::new(terms, c)));
    }

    /// `AllDifferent` over a variable group.
    pub fn all_different(&mut self, vars: Vec<VarId>) {
        self.post(Box::new(AllDifferent::new(vars)));
    }

    /// `Cumulative` (constraint (2)).
    pub fn cumulative(&mut self, tasks: Vec<CumTask>, capacity: i32) {
        self.post(Box::new(Cumulative::new(tasks, capacity)));
    }

    /// Unary-resource scheduling (stronger than `Cumulative` with
    /// capacity 1); used for the accelerator and index/merge units.
    pub fn disjunctive(&mut self, tasks: Vec<DisjTask>) {
        self.post(Box::new(Disjunctive::new(tasks)));
    }

    /// `Diff2` (constraint (11)).
    pub fn diff2(&mut self, rects: Vec<Rect>) {
        self.post(Box::new(Diff2::new(rects)));
    }

    /// Slot/line/page channeling (constraint group (6)).
    pub fn slot_geometry(
        &mut self,
        slot: VarId,
        line: VarId,
        page: VarId,
        n_banks: i32,
        page_size: i32,
    ) {
        self.post(Box::new(SlotGeometry::new(
            slot, line, page, n_banks, page_size,
        )));
    }

    /// Modular channeling `s = m·k + t`, `t ∈ [0, m)` (modulo scheduling).
    pub fn mod_channel(&mut self, s: VarId, k: VarId, t: VarId, modulus: i32) {
        self.post(Box::new(ModChannel { s, k, t, modulus }));
    }

    /// `page_d = page_e ⟹ line_d = line_e` (constraint (7)).
    pub fn page_line_implies(
        &mut self,
        page_d: VarId,
        line_d: VarId,
        page_e: VarId,
        line_e: VarId,
    ) {
        self.post(Box::new(PageLineImplies {
            page_d,
            line_d,
            page_e,
            line_e,
        }));
    }

    /// Extensional constraint: `vars` must match one of `tuples`.
    pub fn table(&mut self, vars: Vec<VarId>, tuples: Vec<Vec<i32>>) {
        self.post(Box::new(Table::new(vars, tuples)));
    }

    /// Guarded memory-compatibility of co-scheduled operations
    /// (constraints (8)/(9)).
    pub fn cond_same_time(&mut self, s_i: VarId, s_j: VarId, pairs: Vec<GuardedPair>) {
        self.post(Box::new(CondSameTime { s_i, s_j, pairs }));
    }
}

impl Default for Model {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{minimize, Phase, SearchConfig, ValSel, VarSel};

    #[test]
    fn facade_builds_and_solves_small_jobshop() {
        // 3 unit tasks on a 1-capacity machine with a chain a→b.
        let mut m = Model::new();
        let a = m.new_var(0, 10);
        let b = m.new_var(0, 10);
        let c = m.new_var(0, 10);
        m.precedence(a, 1, b);
        m.cumulative(
            vec![
                CumTask {
                    start: a,
                    dur: 1,
                    req: 1,
                },
                CumTask {
                    start: b,
                    dur: 1,
                    req: 1,
                },
                CumTask {
                    start: c,
                    dur: 1,
                    req: 1,
                },
            ],
            1,
        );
        let obj = m.new_var(0, 12);
        let ea = m.new_var(0, 12);
        let eb = m.new_var(0, 12);
        let ec = m.new_var(0, 12);
        m.eq_offset(a, 1, ea);
        m.eq_offset(b, 1, eb);
        m.eq_offset(c, 1, ec);
        m.max_of(vec![ea, eb, ec], obj);
        let cfg = SearchConfig {
            phases: vec![Phase::new(vec![a, b, c], VarSel::SmallestMin, ValSel::Min)],
            ..Default::default()
        };
        let r = minimize(&mut m, obj, &cfg);
        assert_eq!(r.objective, Some(3));
    }
}
