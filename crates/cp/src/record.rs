//! `eit-trace/1`: the versioned binary search-trace format.
//!
//! A trace file ties one recorded solve to the exact inputs that produced
//! it — a canonical IR hash, an architecture hash, and the solver
//! configuration string — followed by every [`SearchEvent`] the run
//! emitted, length-prefixed so readers can skip records they do not
//! understand and detect truncation.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic       8 bytes   b"EITTRACE"
//! version     u32       1
//! ir_hash     u64       FNV-1a over the canonical IR serialization
//! arch_hash   u64       FNV-1a over the ArchSpec's canonical field string
//! hash_every  u64       StateHash cadence in nodes; 0 = hashing off
//! config_len  u32       byte length of the config string
//! config      bytes     UTF-8 solver-configuration summary
//! records     ...       until EOF, each: [len: u8][tag: u8][payload]
//! ```
//!
//! `len` counts every byte after itself (tag included), so a reader can
//! always skip `len` bytes. The running FNV-1a digest of *all* bytes
//! written — header and records — is the trace hash recorded in
//! `eit-run-metrics/1`; two runs are byte-identical iff their hashes are.
//!
//! [`RecorderSink`] streams events straight to disk through the ordinary
//! [`TraceSink`] trait, so recording plugs into any search driver that
//! takes a [`crate::TraceHandle`]. [`Trace::read`] loads a file back for
//! the replay engine in [`crate::replay`].

use crate::trace::{SearchEvent, TraceSink};
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// File magic, first 8 bytes of every trace.
pub const TRACE_MAGIC: &[u8; 8] = b"EITTRACE";
/// Format version this module reads and writes.
pub const TRACE_VERSION: u32 = 1;

/// Streaming FNV-1a 64-bit hasher. Hand-rolled on purpose: the trace
/// hash is part of the on-disk format and must not drift with std's
/// unspecified `DefaultHasher`.
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

impl Fnv64 {
    pub fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// FNV-1a 64-bit digest of `bytes` in one call.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

/// Everything the header binds a trace to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceHeader {
    /// Digest of the exact IR that was scheduled (post-pass).
    pub ir_hash: u64,
    /// Digest of the target architecture's canonical parameter string.
    pub arch_hash: u64,
    /// [`SearchEvent::StateHash`] cadence in nodes; 0 = hashing off.
    pub hash_every: u64,
    /// Human-readable solver-configuration summary. Excludes anything
    /// nondeterministic or execution-only (thread counts): traces from
    /// `--jobs 1` and `--jobs N` of the same solve must be byte-equal.
    pub config: String,
}

impl TraceHeader {
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(40 + self.config.len());
        out.extend_from_slice(TRACE_MAGIC);
        out.extend_from_slice(&TRACE_VERSION.to_le_bytes());
        out.extend_from_slice(&self.ir_hash.to_le_bytes());
        out.extend_from_slice(&self.arch_hash.to_le_bytes());
        out.extend_from_slice(&self.hash_every.to_le_bytes());
        out.extend_from_slice(&(self.config.len() as u32).to_le_bytes());
        out.extend_from_slice(self.config.as_bytes());
        out
    }
}

// Event tags. Append-only: new variants get new numbers, and version
// bumps are for layout changes, not new tags.
const TAG_START: u8 = 0;
const TAG_BRANCH: u8 = 1;
const TAG_FAIL: u8 = 2;
const TAG_BACKTRACK: u8 = 3;
const TAG_SOLUTION: u8 = 4;
const TAG_BOUND: u8 = 5;
const TAG_RESTART: u8 = 6;
const TAG_DEADLINE: u8 = 7;
const TAG_NODE_LIMIT: u8 = 8;
const TAG_CANCELLED: u8 = 9;
const TAG_DONE: u8 = 10;
const TAG_STATE_HASH: u8 = 11;
const TAG_STREAM: u8 = 12;

fn status_code(status: &str) -> u8 {
    match status {
        "optimal" => 0,
        "feasible" => 1,
        "infeasible" => 2,
        _ => 3, // "unknown" and anything future
    }
}

fn status_str(code: u8) -> Option<&'static str> {
    Some(match code {
        0 => "optimal",
        1 => "feasible",
        2 => "infeasible",
        3 => "unknown",
        _ => return None,
    })
}

/// Append one `[len][tag][payload]` record for `event` to `buf`.
fn encode(event: &SearchEvent, buf: &mut Vec<u8>) {
    let at = buf.len();
    buf.push(0); // length placeholder
    match event {
        SearchEvent::Start { vars, propagators } => {
            buf.push(TAG_START);
            buf.extend_from_slice(&(*vars as u32).to_le_bytes());
            buf.extend_from_slice(&(*propagators as u32).to_le_bytes());
        }
        SearchEvent::Branch { depth, var, val } => {
            buf.push(TAG_BRANCH);
            buf.extend_from_slice(&(*depth as u32).to_le_bytes());
            buf.extend_from_slice(&var.to_le_bytes());
            buf.extend_from_slice(&val.to_le_bytes());
        }
        SearchEvent::Fail { depth } => {
            buf.push(TAG_FAIL);
            buf.extend_from_slice(&(*depth as u32).to_le_bytes());
        }
        SearchEvent::Backtrack { depth } => {
            buf.push(TAG_BACKTRACK);
            buf.extend_from_slice(&(*depth as u32).to_le_bytes());
        }
        SearchEvent::Solution { objective, nodes } => {
            buf.push(TAG_SOLUTION);
            buf.push(objective.is_some() as u8);
            buf.extend_from_slice(&objective.unwrap_or(0).to_le_bytes());
            buf.extend_from_slice(&nodes.to_le_bytes());
        }
        SearchEvent::BoundUpdate { bound } => {
            buf.push(TAG_BOUND);
            buf.extend_from_slice(&bound.to_le_bytes());
        }
        SearchEvent::Restart { bound } => {
            buf.push(TAG_RESTART);
            buf.extend_from_slice(&bound.to_le_bytes());
        }
        SearchEvent::DeadlineHit { nodes } => {
            buf.push(TAG_DEADLINE);
            buf.extend_from_slice(&nodes.to_le_bytes());
        }
        SearchEvent::NodeLimitHit { nodes } => {
            buf.push(TAG_NODE_LIMIT);
            buf.extend_from_slice(&nodes.to_le_bytes());
        }
        SearchEvent::Cancelled { nodes } => {
            buf.push(TAG_CANCELLED);
            buf.extend_from_slice(&nodes.to_le_bytes());
        }
        SearchEvent::StateHash { nodes, hash } => {
            buf.push(TAG_STATE_HASH);
            buf.extend_from_slice(&nodes.to_le_bytes());
            buf.extend_from_slice(&hash.to_le_bytes());
        }
        SearchEvent::Stream { id } => {
            buf.push(TAG_STREAM);
            buf.extend_from_slice(&id.to_le_bytes());
        }
        SearchEvent::Done {
            status,
            nodes,
            fails,
            solutions,
        } => {
            buf.push(TAG_DONE);
            buf.push(status_code(status));
            buf.extend_from_slice(&nodes.to_le_bytes());
            buf.extend_from_slice(&fails.to_le_bytes());
            buf.extend_from_slice(&solutions.to_le_bytes());
        }
    }
    buf[at] = (buf.len() - at - 1) as u8;
}

struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.at + n > self.bytes.len() {
            return Err(bad("truncated trace"));
        }
        let s = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn i32(&mut self) -> io::Result<i32> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn decode(tag: u8, c: &mut Cursor) -> io::Result<SearchEvent> {
    Ok(match tag {
        TAG_START => SearchEvent::Start {
            vars: c.u32()? as usize,
            propagators: c.u32()? as usize,
        },
        TAG_BRANCH => SearchEvent::Branch {
            depth: c.u32()? as usize,
            var: c.u32()?,
            val: c.i32()?,
        },
        TAG_FAIL => SearchEvent::Fail {
            depth: c.u32()? as usize,
        },
        TAG_BACKTRACK => SearchEvent::Backtrack {
            depth: c.u32()? as usize,
        },
        TAG_SOLUTION => {
            let has_obj = c.u8()? != 0;
            let obj = c.i32()?;
            SearchEvent::Solution {
                objective: has_obj.then_some(obj),
                nodes: c.u64()?,
            }
        }
        TAG_BOUND => SearchEvent::BoundUpdate { bound: c.i32()? },
        TAG_RESTART => SearchEvent::Restart { bound: c.i32()? },
        TAG_DEADLINE => SearchEvent::DeadlineHit { nodes: c.u64()? },
        TAG_NODE_LIMIT => SearchEvent::NodeLimitHit { nodes: c.u64()? },
        TAG_CANCELLED => SearchEvent::Cancelled { nodes: c.u64()? },
        TAG_STATE_HASH => SearchEvent::StateHash {
            nodes: c.u64()?,
            hash: c.u64()?,
        },
        TAG_STREAM => SearchEvent::Stream { id: c.u32()? },
        TAG_DONE => SearchEvent::Done {
            status: status_str(c.u8()?).ok_or_else(|| bad("unknown status code"))?,
            nodes: c.u64()?,
            fails: c.u64()?,
            solutions: c.u64()?,
        },
        other => return Err(bad(format!("unknown event tag {other}"))),
    })
}

/// A trace file loaded back into memory.
#[derive(Clone, Debug)]
pub struct Trace {
    pub header: TraceHeader,
    pub events: Vec<SearchEvent>,
    /// FNV-1a over the whole file, identical to the recorder's
    /// [`RecorderSink::hash`] for an intact file.
    pub file_hash: u64,
}

impl Trace {
    /// Load and validate a trace file.
    pub fn read(path: impl AsRef<Path>) -> io::Result<Trace> {
        Self::from_bytes(&std::fs::read(path)?)
    }

    pub fn from_bytes(bytes: &[u8]) -> io::Result<Trace> {
        let mut c = Cursor { bytes, at: 0 };
        if c.take(8)? != TRACE_MAGIC {
            return Err(bad("not an eit-trace file (bad magic)"));
        }
        let version = c.u32()?;
        if version != TRACE_VERSION {
            return Err(bad(format!(
                "unsupported trace version {version} (this build reads {TRACE_VERSION})"
            )));
        }
        let ir_hash = c.u64()?;
        let arch_hash = c.u64()?;
        let hash_every = c.u64()?;
        let config_len = c.u32()? as usize;
        let config = String::from_utf8(c.take(config_len)?.to_vec())
            .map_err(|_| bad("config string is not UTF-8"))?;
        let mut events = Vec::new();
        while c.at < bytes.len() {
            let len = c.u8()? as usize;
            let body = c.take(len)?;
            let mut rc = Cursor { bytes: body, at: 0 };
            let tag = rc.u8()?;
            events.push(decode(tag, &mut rc)?);
            if rc.at != body.len() {
                return Err(bad(format!("record tag {tag} has trailing bytes")));
            }
        }
        Ok(Trace {
            header: TraceHeader {
                ir_hash,
                arch_hash,
                hash_every,
                config,
            },
            events,
            file_hash: fnv1a(bytes),
        })
    }
}

/// A [`TraceSink`] that streams every event to an `eit-trace/1` file.
///
/// Keep the sink behind an `Arc<Mutex<_>>` handle (see
/// [`crate::TraceHandle`]) to read [`hash`](RecorderSink::hash) and
/// [`events`](RecorderSink::events) after the solve; the search driver
/// flushes it at `Done`.
pub struct RecorderSink {
    out: BufWriter<File>,
    hash: Fnv64,
    events: u64,
    buf: Vec<u8>,
}

impl RecorderSink {
    /// Create `path` and write the header immediately.
    pub fn create(path: impl AsRef<Path>, header: &TraceHeader) -> io::Result<Self> {
        let mut out = BufWriter::new(File::create(path)?);
        let bytes = header.to_bytes();
        out.write_all(&bytes)?;
        let mut hash = Fnv64::new();
        hash.write(&bytes);
        Ok(RecorderSink {
            out,
            hash,
            events: 0,
            buf: Vec::with_capacity(32),
        })
    }

    /// Running FNV-1a over everything written so far (header included).
    pub fn hash(&self) -> u64 {
        self.hash.finish()
    }

    /// Number of event records written.
    pub fn events(&self) -> u64 {
        self.events
    }
}

impl TraceSink for RecorderSink {
    fn record(&mut self, event: &SearchEvent) {
        self.buf.clear();
        encode(event, &mut self.buf);
        self.hash.write(&self.buf);
        // An I/O error mid-search must not kill the solve (same policy as
        // JsonlSink); the hash still covers the intended bytes, so a
        // short file is detected at read time.
        let _ = self.out.write_all(&self.buf);
        self.events += 1;
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_variants() -> Vec<SearchEvent> {
        vec![
            SearchEvent::Start {
                vars: 7,
                propagators: 3,
            },
            SearchEvent::Branch {
                depth: 2,
                var: 5,
                val: -4,
            },
            SearchEvent::Fail { depth: 3 },
            SearchEvent::Backtrack { depth: 1 },
            SearchEvent::Solution {
                objective: Some(-9),
                nodes: 41,
            },
            SearchEvent::Solution {
                objective: None,
                nodes: 42,
            },
            SearchEvent::BoundUpdate { bound: 17 },
            SearchEvent::Restart { bound: 16 },
            SearchEvent::DeadlineHit { nodes: 100 },
            SearchEvent::NodeLimitHit { nodes: 101 },
            SearchEvent::Cancelled { nodes: 102 },
            SearchEvent::StateHash {
                nodes: 64,
                hash: 0xdead_beef_0123_4567,
            },
            SearchEvent::Stream { id: 9 },
            SearchEvent::Done {
                status: "feasible",
                nodes: 103,
                fails: 50,
                solutions: 2,
            },
        ]
    }

    #[test]
    fn binary_roundtrip_preserves_every_variant() {
        let header = TraceHeader {
            ir_hash: 1,
            arch_hash: 2,
            hash_every: 64,
            config: "mode=test".into(),
        };
        let mut bytes = header.to_bytes();
        let events = all_variants();
        for e in &events {
            encode(e, &mut bytes);
        }
        let t = Trace::from_bytes(&bytes).unwrap();
        assert_eq!(t.header, header);
        assert_eq!(t.events, events);
        assert_eq!(t.file_hash, fnv1a(&bytes));
    }

    #[test]
    fn truncated_and_corrupt_traces_are_rejected() {
        let header = TraceHeader {
            ir_hash: 0,
            arch_hash: 0,
            hash_every: 0,
            config: String::new(),
        };
        let mut bytes = header.to_bytes();
        encode(&SearchEvent::Fail { depth: 1 }, &mut bytes);
        // Chop the last byte off the record.
        assert!(Trace::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        // Unknown tag.
        let mut alien = header.to_bytes();
        alien.extend_from_slice(&[1, 200]);
        assert!(Trace::from_bytes(&alien).is_err());
        // Wrong magic.
        let mut wrong = bytes.clone();
        wrong[0] = b'X';
        assert!(Trace::from_bytes(&wrong).is_err());
        // Future version.
        let mut future = bytes.clone();
        future[8] = 9;
        assert!(Trace::from_bytes(&future).is_err());
    }

    #[test]
    fn recorder_sink_writes_a_readable_file_with_matching_hash() {
        let dir = std::env::temp_dir().join("eit-record-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("roundtrip-{}.trace", std::process::id()));
        let header = TraceHeader {
            ir_hash: 11,
            arch_hash: 22,
            hash_every: 0,
            config: "mode=unit".into(),
        };
        let events = all_variants();
        let mut sink = RecorderSink::create(&path, &header).unwrap();
        for e in &events {
            sink.record(e);
        }
        sink.flush();
        let (hash, count) = (sink.hash(), sink.events());
        drop(sink);
        let t = Trace::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(t.header, header);
        assert_eq!(t.events, events);
        assert_eq!(t.file_hash, hash);
        assert_eq!(count, events.len() as u64);
    }
}
