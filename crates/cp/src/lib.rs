//! # eit-cp — a finite-domain constraint programming solver
//!
//! This crate is the reproduction's stand-in for JaCoP, the Java CP solver
//! the paper uses. It provides exactly the machinery the paper's combined
//! scheduling + memory-allocation model needs:
//!
//! - interval-list [`domain::Domain`]s over `i32`;
//! - a trail-based backtracking [`store::Store`];
//! - a propagation [`engine::Engine`] running subscribed
//!   [`engine::Propagator`]s to fixpoint;
//! - the global constraints **Cumulative** (time-table filtering) and
//!   **Diff2** (pairwise rectangle non-overlap), plus linear, disequality,
//!   `max`, slot-geometry channeling and the guarded memory-access
//!   implications of the paper's constraints (7)–(9);
//! - phased depth-first **branch-and-bound** search with variable/value
//!   heuristics, deadlines and node limits ([`search`]);
//! - a parallel **portfolio** racing several heuristics with a shared
//!   incumbent bound ([`portfolio`]).
//!
//! ## Example
//!
//! ```
//! use eit_cp::model::Model;
//! use eit_cp::props::cumulative::CumTask;
//! use eit_cp::search::{minimize, Phase, SearchConfig, ValSel, VarSel};
//!
//! // Three unit tasks on one machine, a→b precedence; minimize makespan.
//! let mut m = Model::new();
//! let a = m.new_var(0, 10);
//! let b = m.new_var(0, 10);
//! let c = m.new_var(0, 10);
//! m.precedence(a, 1, b);
//! m.cumulative(
//!     [a, b, c].iter().map(|&s| CumTask { start: s, dur: 1, req: 1 }).collect(),
//!     1,
//! );
//! let obj = m.new_var(0, 11);
//! let ends: Vec<_> = [a, b, c]
//!     .iter()
//!     .map(|&s| { let e = m.new_var(0, 11); m.eq_offset(s, 1, e); e })
//!     .collect();
//! m.max_of(ends, obj);
//!
//! let cfg = SearchConfig {
//!     phases: vec![Phase::new(vec![a, b, c], VarSel::SmallestMin, ValSel::Min)],
//!     ..Default::default()
//! };
//! let result = minimize(&mut m, obj, &cfg);
//! assert_eq!(result.objective, Some(3));
//! ```

pub mod cancel;
pub mod domain;
pub mod engine;
pub mod eps;
pub mod model;
pub mod portfolio;
pub mod props;
pub mod record;
pub mod replay;
pub mod search;
pub mod store;
pub mod trace;

pub use cancel::CancelToken;
pub use domain::{Domain, DomainEvent};
pub use engine::{
    render_profile_table, Engine, Priority, PropId, PropProfile, Propagator, Subscriptions, Wake,
};
pub use eps::{eps_minimize, eps_solve, EpsConfig, EpsReport, SubproblemOutcome, WorkerStats};
pub use model::Model;
pub use portfolio::{RaceReport, RacerOutcome};
pub use record::{fnv1a, Fnv64, RecorderSink, Trace, TraceHeader, TRACE_MAGIC, TRACE_VERSION};
pub use replay::{replay, DivergenceReport, ReplayOptions, ReplayReport, ValidatingSink};
pub use search::{
    minimize, solve, solve_all, Phase, RestartConfig, RestartPolicy, SearchConfig, SearchResult,
    SearchStats, SearchStatus, Solution, ValSel, VarSel,
};
pub use store::{Fail, PropResult, Store, VarId};
pub use trace::{
    EventCounts, JsonlSink, MemorySink, NullSink, ProgressSink, SearchEvent, TraceHandle, TraceSink,
};
