//! Parallel portfolio search: race several search strategies over
//! independently built copies of the same model, sharing the incumbent
//! objective bound across threads.
//!
//! The paper reports solver runtimes up to its 10-minute timeout and lists
//! taming them as future work; a portfolio is the standard remedy — each
//! thread runs a different variable/value heuristic, and the first good
//! bound found by any thread prunes all of them. Models contain boxed
//! propagators and are not `Clone`, so the portfolio takes a *builder*
//! closure that constructs a fresh model per thread.

use crate::model::Model;
use crate::search::{minimize, SearchConfig, SearchResult, SearchStatus};
use crate::store::VarId;
use parking_lot::Mutex;
use std::sync::atomic::AtomicI32;
use std::sync::Arc;

/// One portfolio entry: builds a model, its objective var and its config.
pub type Strategy = Box<dyn Fn() -> (Model, VarId, SearchConfig) + Send + Sync>;

/// Race `strategies` in parallel; return the best result found by any.
///
/// Each strategy's `SearchConfig.shared_bound` is overwritten with the
/// portfolio-wide bound. The returned result carries the best objective
/// across threads; its status is `Optimal` if *any* thread proved
/// optimality (a proof under a shared bound that equals the incumbent is a
/// valid proof for the portfolio), `Infeasible` if any proved
/// infeasibility, otherwise the best feasible/unknown outcome.
pub fn race(strategies: Vec<Strategy>) -> SearchResult {
    assert!(!strategies.is_empty());
    let shared = Arc::new(AtomicI32::new(i32::MAX));
    let results: Mutex<Vec<SearchResult>> = Mutex::new(Vec::new());

    crossbeam::scope(|scope| {
        for strat in &strategies {
            let shared = Arc::clone(&shared);
            let results = &results;
            scope.spawn(move |_| {
                let (mut model, obj, mut cfg) = strat();
                cfg.shared_bound = Some(shared);
                let r = minimize(&mut model, obj, &cfg);
                results.lock().push(r);
            });
        }
    })
    .expect("portfolio thread panicked");

    let all = results.into_inner();
    merge_results(all)
}

fn merge_results(all: Vec<SearchResult>) -> SearchResult {
    // Infeasibility proven anywhere decides the instance.
    if let Some(inf) = all
        .iter()
        .position(|r| r.status == SearchStatus::Infeasible)
    {
        let mut v = all;
        return v.swap_remove(inf);
    }
    // Any fully exhausted tree certifies that nothing beats the final
    // shared bound, which equals the portfolio incumbent's objective.
    let any_completed = all.iter().any(|r| r.completed);
    // Pick the best objective (ties: first).
    let mut best_idx = 0;
    let mut best_obj = i32::MAX;
    let mut found = false;
    for (i, r) in all.iter().enumerate() {
        if let Some(o) = r.objective {
            if !found || o < best_obj {
                best_obj = o;
                best_idx = i;
                found = true;
            }
        }
    }
    let mut v = all;
    let mut out = v.swap_remove(if found { best_idx } else { 0 });
    if found && any_completed {
        out.status = SearchStatus::Optimal;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::basic::{MaxOf, NeqOffset};
    use crate::search::{Phase, ValSel, VarSel};

    fn build(n: usize, val_sel: ValSel) -> (Model, VarId, SearchConfig) {
        let mut m = Model::new();
        let vars: Vec<VarId> = (0..n).map(|_| m.new_var(0, n as i32 - 1)).collect();
        for i in 0..n {
            for j in (i + 1)..n {
                m.post(Box::new(NeqOffset { x: vars[i], y: vars[j], c: 0 }));
            }
        }
        let obj = m.new_var(0, n as i32 - 1);
        m.post(Box::new(MaxOf { xs: vars.clone(), y: obj }));
        let cfg = SearchConfig {
            phases: vec![Phase::new(vars, VarSel::FirstFail, val_sel)],
            ..Default::default()
        };
        (m, obj, cfg)
    }

    #[test]
    fn portfolio_agrees_with_single_thread() {
        let n = 6;
        let strategies: Vec<Strategy> = vec![
            Box::new(move || build(n, ValSel::Min)),
            Box::new(move || build(n, ValSel::Max)),
            Box::new(move || build(n, ValSel::Split)),
        ];
        let r = race(strategies);
        // n all-different values in 0..n → max is exactly n-1.
        assert_eq!(r.objective, Some(n as i32 - 1));
        assert_eq!(r.status, SearchStatus::Optimal);
    }

    #[test]
    fn portfolio_detects_infeasibility() {
        fn infeasible() -> (Model, VarId, SearchConfig) {
            let mut m = Model::new();
            let x = m.new_var(0, 0);
            let y = m.new_var(0, 0);
            m.post(Box::new(NeqOffset { x, y, c: 0 }));
            let cfg = SearchConfig {
                phases: vec![Phase::new(vec![x, y], VarSel::InputOrder, ValSel::Min)],
                ..Default::default()
            };
            (m, x, cfg)
        }
        let strategies: Vec<Strategy> =
            vec![Box::new(infeasible), Box::new(infeasible)];
        let r = race(strategies);
        assert_eq!(r.status, SearchStatus::Infeasible);
    }
}
