//! Parallel portfolio search: race several search strategies over
//! independently built copies of the same model, sharing the incumbent
//! objective bound across threads.
//!
//! The paper reports solver runtimes up to its 10-minute timeout and lists
//! taming them as future work; a portfolio is the standard remedy — each
//! thread runs a different variable/value heuristic, and the first good
//! bound found by any thread prunes all of them. Models contain boxed
//! propagators and are not `Clone`, so the portfolio takes a *builder*
//! closure that constructs a fresh model per thread.

use crate::model::Model;
use crate::search::{minimize, SearchConfig, SearchResult, SearchStats, SearchStatus};
use crate::store::VarId;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::AtomicI32;
use std::sync::{Arc, Mutex};

/// One portfolio entry: builds a model, its objective var and its config.
pub type Strategy = Box<dyn Fn() -> (Model, VarId, SearchConfig) + Send + Sync>;

/// What each racer did, by strategy index. The index refers to the
/// position in the `strategies` vector passed to [`race_with_report`].
#[derive(Debug, Clone, Copy)]
pub struct RacerOutcome {
    pub strategy: usize,
    pub status: SearchStatus,
    pub objective: Option<i32>,
    pub completed: bool,
    pub stats: SearchStats,
}

/// Per-racer accounting for a portfolio run.
#[derive(Debug, Clone)]
pub struct RaceReport {
    /// Index of the strategy whose result was selected by the merge.
    pub winner: usize,
    /// One entry per strategy, in strategy order.
    pub racers: Vec<RacerOutcome>,
}

/// Race `strategies` in parallel; return the best result found by any.
///
/// Each strategy's `SearchConfig.shared_bound` is overwritten with the
/// portfolio-wide bound. The returned result carries the best objective
/// across threads; its status is `Optimal` if *any* thread proved
/// optimality (a proof under a shared bound that equals the incumbent is a
/// valid proof for the portfolio), `Infeasible` if any proved
/// infeasibility, otherwise the best feasible/unknown outcome. Its
/// `stats` are the merge of all racers' stats: summed nodes, fails,
/// solutions and propagations, max depth, max wall time.
pub fn race(strategies: Vec<Strategy>) -> SearchResult {
    race_with_report(strategies).0
}

/// As [`race`], additionally reporting per-racer statistics and the
/// winning strategy index.
///
/// If a racer panics, the panic is caught so the remaining racers still
/// finish, and is then re-raised with its *original* payload once the
/// scope has joined (lowest strategy index wins when several panic, so
/// the observed panic is deterministic). Without the catch,
/// `std::thread::scope` would replace the payload with its generic
/// "a scoped thread panicked" message and drop every racer's result.
pub fn race_with_report(strategies: Vec<Strategy>) -> (SearchResult, RaceReport) {
    assert!(!strategies.is_empty());
    let shared = Arc::new(AtomicI32::new(i32::MAX));
    let results: Mutex<Vec<(usize, SearchResult)>> = Mutex::new(Vec::new());
    type Payload = Box<dyn std::any::Any + Send + 'static>;
    let panics: Mutex<Vec<(usize, Payload)>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for (idx, strat) in strategies.iter().enumerate() {
            let shared = Arc::clone(&shared);
            let results = &results;
            let panics = &panics;
            scope.spawn(move || {
                let run = catch_unwind(AssertUnwindSafe(|| {
                    let (mut model, obj, mut cfg) = strat();
                    cfg.shared_bound = Some(shared);
                    minimize(&mut model, obj, &cfg)
                }));
                match run {
                    Ok(r) => results
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push((idx, r)),
                    Err(payload) => panics
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push((idx, payload)),
                }
            });
        }
    });

    let mut panics = panics.into_inner().unwrap_or_else(|e| e.into_inner());
    if !panics.is_empty() {
        panics.sort_by_key(|(idx, _)| *idx);
        resume_unwind(panics.swap_remove(0).1);
    }

    let mut all = results.into_inner().unwrap_or_else(|e| e.into_inner());
    all.sort_by_key(|(idx, _)| *idx);
    merge_results(all)
}

/// Sum the additive counters across racers, take the max of the
/// watermark-style ones.
fn merge_stats(all: &[(usize, SearchResult)]) -> SearchStats {
    let mut merged = SearchStats::default();
    for (_, r) in all {
        merged.nodes += r.stats.nodes;
        merged.fails += r.stats.fails;
        merged.solutions += r.stats.solutions;
        merged.propagations += r.stats.propagations;
        merged.max_depth = merged.max_depth.max(r.stats.max_depth);
        merged.time = merged.time.max(r.stats.time);
    }
    merged
}

fn merge_results(all: Vec<(usize, SearchResult)>) -> (SearchResult, RaceReport) {
    let merged_stats = merge_stats(&all);
    let racers: Vec<RacerOutcome> = all
        .iter()
        .map(|(idx, r)| RacerOutcome {
            strategy: *idx,
            status: r.status,
            objective: r.objective,
            completed: r.completed,
            stats: r.stats,
        })
        .collect();

    // Infeasibility proven anywhere decides the instance.
    let pick = if let Some(inf) = all
        .iter()
        .position(|(_, r)| r.status == SearchStatus::Infeasible)
    {
        inf
    } else {
        // Pick the best objective (ties: first in strategy order).
        let mut best_idx = None;
        let mut best_obj = i32::MAX;
        for (i, (_, r)) in all.iter().enumerate() {
            if let Some(o) = r.objective {
                if best_idx.is_none() || o < best_obj {
                    best_obj = o;
                    best_idx = Some(i);
                }
            }
        }
        best_idx.unwrap_or(0)
    };

    // Any fully exhausted tree certifies that nothing beats the final
    // shared bound, which equals the portfolio incumbent's objective.
    let any_completed = all.iter().any(|(_, r)| r.completed);
    let found = all[pick].1.objective.is_some();
    let infeasible = all[pick].1.status == SearchStatus::Infeasible;

    let mut v = all;
    let (winner, mut out) = v.swap_remove(pick);
    if !infeasible && found && any_completed {
        out.status = SearchStatus::Optimal;
    }
    out.stats = merged_stats;
    (out, RaceReport { winner, racers })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::basic::{MaxOf, NeqOffset};
    use crate::search::{Phase, ValSel, VarSel};

    fn build(n: usize, val_sel: ValSel) -> (Model, VarId, SearchConfig) {
        let mut m = Model::new();
        let vars: Vec<VarId> = (0..n).map(|_| m.new_var(0, n as i32 - 1)).collect();
        for i in 0..n {
            for j in (i + 1)..n {
                m.post(Box::new(NeqOffset {
                    x: vars[i],
                    y: vars[j],
                    c: 0,
                }));
            }
        }
        let obj = m.new_var(0, n as i32 - 1);
        m.post(Box::new(MaxOf {
            xs: vars.clone(),
            y: obj,
        }));
        let cfg = SearchConfig {
            phases: vec![Phase::new(vars, VarSel::FirstFail, val_sel)],
            ..Default::default()
        };
        (m, obj, cfg)
    }

    #[test]
    fn portfolio_agrees_with_single_thread() {
        let n = 6;
        let strategies: Vec<Strategy> = vec![
            Box::new(move || build(n, ValSel::Min)),
            Box::new(move || build(n, ValSel::Max)),
            Box::new(move || build(n, ValSel::Split)),
        ];
        let r = race(strategies);
        // n all-different values in 0..n → max is exactly n-1.
        assert_eq!(r.objective, Some(n as i32 - 1));
        assert_eq!(r.status, SearchStatus::Optimal);
    }

    #[test]
    fn portfolio_detects_infeasibility() {
        fn infeasible() -> (Model, VarId, SearchConfig) {
            let mut m = Model::new();
            let x = m.new_var(0, 0);
            let y = m.new_var(0, 0);
            m.post(Box::new(NeqOffset { x, y, c: 0 }));
            let cfg = SearchConfig {
                phases: vec![Phase::new(vec![x, y], VarSel::InputOrder, ValSel::Min)],
                ..Default::default()
            };
            (m, x, cfg)
        }
        let strategies: Vec<Strategy> = vec![Box::new(infeasible), Box::new(infeasible)];
        let r = race(strategies);
        assert_eq!(r.status, SearchStatus::Infeasible);
    }

    #[test]
    fn panicking_racer_propagates_its_own_payload() {
        let n = 5;
        let strategies: Vec<Strategy> = vec![
            Box::new(move || build(n, ValSel::Min)),
            Box::new(|| panic!("racer 1 exploded")),
            Box::new(move || build(n, ValSel::Max)),
        ];
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| race_with_report(strategies)))
            .expect_err("panicking racer must propagate");
        // The original payload survives, not scope's generic
        // "a scoped thread panicked" message.
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| err.downcast_ref::<String>().map(String::as_str))
            .unwrap_or("<non-string payload>");
        assert_eq!(msg, "racer 1 exploded");
    }

    #[test]
    fn report_merges_stats_and_names_winner() {
        let n = 5;
        let strategies: Vec<Strategy> = vec![
            Box::new(move || build(n, ValSel::Min)),
            Box::new(move || build(n, ValSel::Max)),
        ];
        let (r, report) = race_with_report(strategies);
        assert_eq!(report.racers.len(), 2);
        assert!(report.winner < 2);
        assert_eq!(report.racers[0].strategy, 0);
        assert_eq!(report.racers[1].strategy, 1);
        // Merged counters are the per-racer sums / maxes.
        let sum_nodes: u64 = report.racers.iter().map(|o| o.stats.nodes).sum();
        let sum_props: u64 = report.racers.iter().map(|o| o.stats.propagations).sum();
        let max_depth = report
            .racers
            .iter()
            .map(|o| o.stats.max_depth)
            .max()
            .unwrap();
        assert_eq!(r.stats.nodes, sum_nodes);
        assert_eq!(r.stats.propagations, sum_props);
        assert_eq!(r.stats.max_depth, max_depth);
        assert!(r.stats.nodes > 0);
    }
}
