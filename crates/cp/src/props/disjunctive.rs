//! The `Disjunctive` (unary resource) global constraint: tasks with
//! fixed durations on a machine of capacity one.
//!
//! Semantically a `Cumulative` with capacity 1, but with stronger
//! filtering available precisely because overlap is completely
//! forbidden:
//!
//! - **overload check** (Carlier): for every release/deadline window, the
//!   total processing time of tasks confined inside must fit;
//! - **detectable precedences**: if task `j` cannot end before task `i`
//!   must start finishing (`ect_i > lst_j` and they cannot be reordered),
//!   then `i` precedes `j` and both bounds tighten;
//! - **pairwise semi-reified ordering**: when only one order of a pair is
//!   still possible, its precedence is enforced.
//!
//! The EIT's scalar accelerator runs iterative (multi-cycle) operations
//! and the index/merge unit runs unit ones; the scheduler uses this
//! propagator for both (a drop-in upgrade over `Cumulative(cap=1)`).

use crate::domain::DomainEvent;
use crate::engine::{Priority, Propagator, Subscriptions, Wake};
use crate::store::{Fail, PropResult, Store, VarId};

/// One task on the unary resource.
#[derive(Clone, Copy, Debug)]
pub struct DisjTask {
    pub start: VarId,
    pub dur: i32,
}

pub struct Disjunctive {
    pub tasks: Vec<DisjTask>,
}

impl Disjunctive {
    pub fn new(tasks: Vec<DisjTask>) -> Self {
        Disjunctive {
            tasks: tasks.into_iter().filter(|t| t.dur > 0).collect(),
        }
    }

    fn overload_check(&self, s: &Store) -> PropResult {
        // For each window [a, b) from est/lct pairs: Σ dur of contained
        // tasks ≤ b − a.
        let info: Vec<(i32, i32, i32)> = self
            .tasks
            .iter()
            .map(|t| (s.min(t.start), s.max(t.start) + t.dur, t.dur))
            .collect();
        let mut lcts: Vec<i32> = info.iter().map(|&(_, lct, _)| lct).collect();
        lcts.sort_unstable();
        lcts.dedup();
        for &b in &lcts {
            let mut inside: Vec<(i32, i32)> = info
                .iter()
                .filter(|&&(_, lct, _)| lct <= b)
                .map(|&(est, _, d)| (est, d))
                .collect();
            inside.sort_by_key(|&(est, _)| std::cmp::Reverse(est));
            let mut work = 0i64;
            for &(a, d) in &inside {
                work += d as i64;
                if work > (b - a) as i64 {
                    return Err(Fail);
                }
            }
        }
        Ok(())
    }

    /// If only one ordering of a pair remains possible, enforce it.
    /// `dirty` (when non-empty) limits work to pairs with a dirty member:
    /// a pair whose both tasks kept their bounds since our previous run
    /// was examined clean then and all four values it reads are unchanged.
    fn pairwise_orders(&self, s: &mut Store, dirty: &[bool]) -> PropResult {
        let n = self.tasks.len();
        for i in 0..n {
            for j in (i + 1)..n {
                if !dirty.is_empty() && !dirty[i] && !dirty[j] {
                    continue;
                }
                let (a, b) = (self.tasks[i], self.tasks[j]);
                // a before b possible? est_a + d_a ≤ lst_b
                let ab = s.min(a.start) + a.dur <= s.max(b.start);
                let ba = s.min(b.start) + b.dur <= s.max(a.start);
                match (ab, ba) {
                    (false, false) => return Err(Fail),
                    (true, false) => {
                        // a must precede b.
                        s.remove_below(b.start, s.min(a.start) + a.dur)?;
                        s.remove_above(a.start, s.max(b.start) - a.dur)?;
                    }
                    (false, true) => {
                        s.remove_below(a.start, s.min(b.start) + b.dur)?;
                        s.remove_above(b.start, s.max(a.start) - b.dur)?;
                    }
                    (true, true) => {
                        // Both orders open: forbid start values that would
                        // overlap a *fixed* opponent.
                        if let Some(vb) = s.dom(b.start).value() {
                            for v in (vb - a.dur + 1)..(vb + b.dur) {
                                s.remove_value(a.start, v)?;
                            }
                        }
                        if let Some(va) = s.dom(a.start).value() {
                            for v in (va - b.dur + 1)..(va + a.dur) {
                                s.remove_value(b.start, v)?;
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

impl Propagator for Disjunctive {
    fn subscribe(&self, subs: &mut Subscriptions) {
        // Every rule reads bounds (fixedness changes always move a
        // bound); interior holes cannot enable new filtering. The tag is
        // the task index for incremental pair selection.
        for (i, t) in self.tasks.iter().enumerate() {
            subs.watch_tagged(t.start, DomainEvent::BOUNDS, i as u32);
        }
    }

    fn propagate(&mut self, s: &mut Store, wake: &Wake<'_>) -> PropResult {
        // The overload check stays global so failure detection is
        // identical to the FIFO baseline's.
        self.overload_check(s)?;
        let mut dirty: Vec<bool> = Vec::new();
        if !wake.rescan() {
            dirty = vec![false; self.tasks.len()];
            for &tag in wake.tags() {
                dirty[tag as usize] = true;
            }
        }
        self.pairwise_orders(s, &dirty)
    }

    fn name(&self) -> &'static str {
        "disjunctive"
    }

    fn priority(&self) -> Priority {
        Priority::Global
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;

    fn setup(specs: &[(i32, i32, i32)]) -> (Store, Engine, Vec<VarId>) {
        // (lo, hi, dur)
        let mut s = Store::new();
        let mut tasks = Vec::new();
        let mut vars = Vec::new();
        for &(lo, hi, dur) in specs {
            let v = s.new_var(lo, hi);
            vars.push(v);
            tasks.push(DisjTask { start: v, dur });
        }
        let mut e = Engine::new();
        e.post(Box::new(Disjunctive::new(tasks)), &s);
        (s, e, vars)
    }

    #[test]
    fn overload_detected() {
        // Three 3-cycle tasks in an 8-cycle window: 9 > 8.
        let (mut s, mut e, _) = setup(&[(0, 5, 3), (0, 5, 3), (0, 5, 3)]);
        assert!(e.fixpoint(&mut s).is_err());
    }

    #[test]
    fn exact_fit_accepted_and_ordered() {
        // Three 3-cycle tasks in exactly 9 cycles.
        let (mut s, mut e, _) = setup(&[(0, 6, 3), (0, 6, 3), (0, 6, 3)]);
        assert!(e.fixpoint(&mut s).is_ok());
    }

    #[test]
    fn forced_order_tightens_bounds() {
        // b (dur 4) must finish by 6; a (dur 4) cannot start before 2 —
        // only b-then-a fits.
        let (mut s, mut e, vars) = setup(&[(2, 20, 4), (0, 2, 4)]);
        e.fixpoint(&mut s).unwrap();
        // b ∈ [0,2]; a ≥ b.est + 4 = 4.
        assert!(s.min(vars[0]) >= 4);
    }

    #[test]
    fn fixed_task_carves_hole_in_opponent() {
        let (mut s, mut e, vars) = setup(&[(0, 20, 2), (5, 5, 3)]);
        e.fixpoint(&mut s).unwrap();
        // a (dur 2) cannot start in [4, 7].
        for v in 4..8 {
            assert!(!s.dom(vars[0]).contains(v), "v={v}");
        }
        assert!(s.dom(vars[0]).contains(3));
        assert!(s.dom(vars[0]).contains(8));
    }

    #[test]
    fn impossible_pair_fails() {
        // Two 3-cycle tasks both confined to [0, 2]: lst = 2 < ect = 3
        // in both orders.
        let (mut s, mut e, _) = setup(&[(0, 2, 3), (0, 2, 3)]);
        assert!(e.fixpoint(&mut s).is_err());
    }

    #[test]
    fn search_solves_tight_unary_schedule() {
        use crate::model::Model;
        use crate::search::{solve, Phase, SearchConfig, ValSel, VarSel};
        let mut m = Model::new();
        let vars: Vec<VarId> = (0..4).map(|_| m.new_var(0, 6)).collect();
        m.post(Box::new(Disjunctive::new(
            vars.iter()
                .map(|&v| DisjTask { start: v, dur: 2 })
                .collect(),
        )));
        let cfg = SearchConfig {
            phases: vec![Phase::new(vars.clone(), VarSel::FirstFail, ValSel::Min)],
            ..Default::default()
        };
        let r = solve(&mut m, &cfg);
        let sol = r.best.unwrap();
        let mut starts: Vec<i32> = vars.iter().map(|&v| sol.value(v)).collect();
        starts.sort_unstable();
        for w in starts.windows(2) {
            assert!(w[1] - w[0] >= 2, "{starts:?}");
        }
    }
}
