//! Guarded (conditional) constraints for the memory-access rules —
//! the paper's constraints (7), (8) and (9).
//!
//! - [`PageLineImplies`] enforces `page_d = page_e ⟹ line_d = line_e`
//!   for two vector data nodes that are accessed in the same instruction
//!   (constraint (7): inputs of one vector/matrix operation).
//! - [`CondSameTime`] activates a set of page⟹line implications only when
//!   two operations are scheduled at the same cycle (constraints (8)/(9):
//!   inputs/outputs of co-scheduled operations), and conversely *separates*
//!   the start times as soon as some allocation pair is provably
//!   conflicting.

use crate::domain::DomainEvent;
use crate::engine::{Priority, Propagator, Subscriptions, Wake};
use crate::store::{PropResult, Store, VarId};

/// `page_d = page_e ⟹ line_d = line_e`.
pub struct PageLineImplies {
    pub page_d: VarId,
    pub line_d: VarId,
    pub page_e: VarId,
    pub line_e: VarId,
}

impl PageLineImplies {
    /// Core filtering shared with [`CondSameTime`]. Returns `Ok(true)` if
    /// the implication is *violated-entailed* under the current domains
    /// (pages surely equal AND lines surely different) — callers embedding
    /// this under a guard use that to refute the guard instead of failing.
    fn filter(
        s: &mut Store,
        page_d: VarId,
        line_d: VarId,
        page_e: VarId,
        line_e: VarId,
        hard: bool,
    ) -> Result<bool, crate::store::Fail> {
        let pages_must_equal =
            s.is_fixed(page_d) && s.is_fixed(page_e) && s.value(page_d) == s.value(page_e);
        let lines_cant_equal = s.dom(line_d).disjoint(s.dom(line_e));

        if pages_must_equal && lines_cant_equal {
            if hard {
                return Err(crate::store::Fail);
            }
            return Ok(true);
        }
        if !hard {
            // Under a guard we only *observe* until the guard is decided.
            return Ok(false);
        }
        if pages_must_equal {
            // Enforce line_d = line_e.
            let de = s.dom(line_e).clone();
            s.intersect(line_d, &de)?;
            let dd = s.dom(line_d).clone();
            s.intersect(line_e, &dd)?;
        } else if lines_cant_equal {
            // Contrapositive: page_d ≠ page_e.
            if let Some(p) = s.dom(page_d).value() {
                s.remove_value(page_e, p)?;
            }
            if let Some(p) = s.dom(page_e).value() {
                s.remove_value(page_d, p)?;
            }
        }
        Ok(false)
    }
}

impl Propagator for PageLineImplies {
    fn subscribe(&self, subs: &mut Subscriptions) {
        // Entailment tests mix fixedness and full-domain disjointness, so
        // every event class can flip a decision.
        subs.watch(self.page_d, DomainEvent::ANY);
        subs.watch(self.line_d, DomainEvent::ANY);
        subs.watch(self.page_e, DomainEvent::ANY);
        subs.watch(self.line_e, DomainEvent::ANY);
    }

    fn propagate(&mut self, s: &mut Store, _: &Wake<'_>) -> PropResult {
        Self::filter(s, self.page_d, self.line_d, self.page_e, self.line_e, true).map(|_| ())
    }

    fn name(&self) -> &'static str {
        "page=>line"
    }

    fn priority(&self) -> Priority {
        Priority::Linear
    }
}

/// One (input-of-i, input-of-j) or (output-of-i, output-of-j) data pair
/// guarded by `s_i = s_j`.
#[derive(Clone, Copy, Debug)]
pub struct GuardedPair {
    pub page_d: VarId,
    pub line_d: VarId,
    pub page_e: VarId,
    pub line_e: VarId,
}

/// `s_i = s_j ⟹ ⋀ₖ (page_dₖ = page_eₖ ⟹ line_dₖ = line_eₖ)`.
///
/// Three propagation directions:
/// 1. guard decided *true* (both starts fixed, equal): enforce every
///    page⟹line implication as hard;
/// 2. guard decided *false* (start domains disjoint): entailed, no-op;
/// 3. guard undecided but some pair violated-entailed: refute the guard —
///    `s_i ≠ s_j` (prune when one side is fixed).
pub struct CondSameTime {
    pub s_i: VarId,
    pub s_j: VarId,
    pub pairs: Vec<GuardedPair>,
}

impl Propagator for CondSameTime {
    fn subscribe(&self, subs: &mut Subscriptions) {
        subs.watch(self.s_i, DomainEvent::ANY);
        subs.watch(self.s_j, DomainEvent::ANY);
        for p in &self.pairs {
            subs.watch(p.page_d, DomainEvent::ANY);
            subs.watch(p.line_d, DomainEvent::ANY);
            subs.watch(p.page_e, DomainEvent::ANY);
            subs.watch(p.line_e, DomainEvent::ANY);
        }
    }

    fn propagate(&mut self, s: &mut Store, _: &Wake<'_>) -> PropResult {
        // Guard decided false?
        if s.dom(self.s_i).disjoint(s.dom(self.s_j)) {
            return Ok(());
        }
        let guard_true =
            s.is_fixed(self.s_i) && s.is_fixed(self.s_j) && s.value(self.s_i) == s.value(self.s_j);

        if guard_true {
            for p in &self.pairs {
                PageLineImplies::filter(s, p.page_d, p.line_d, p.page_e, p.line_e, true)?;
            }
            return Ok(());
        }

        // Guard undecided: if any pair is already violated-entailed, the
        // operations must not run at the same cycle.
        for p in &self.pairs {
            let violated =
                PageLineImplies::filter(s, p.page_d, p.line_d, p.page_e, p.line_e, false)?;
            if violated {
                if let Some(v) = s.dom(self.s_i).value() {
                    s.remove_value(self.s_j, v)?;
                }
                if let Some(v) = s.dom(self.s_j).value() {
                    s.remove_value(self.s_i, v)?;
                }
                return Ok(());
            }
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "same-time=>mem-compatible"
    }

    fn priority(&self) -> Priority {
        Priority::Linear
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;

    fn vars(s: &mut Store) -> (VarId, VarId, VarId, VarId) {
        let pd = s.new_var(0, 3);
        let ld = s.new_var(0, 3);
        let pe = s.new_var(0, 3);
        let le = s.new_var(0, 3);
        (pd, ld, pe, le)
    }

    #[test]
    fn equal_pages_force_equal_lines() {
        let mut s = Store::new();
        let (pd, ld, pe, le) = vars(&mut s);
        let mut e = Engine::new();
        e.post(
            Box::new(PageLineImplies {
                page_d: pd,
                line_d: ld,
                page_e: pe,
                line_e: le,
            }),
            &s,
        );
        e.fixpoint(&mut s).unwrap();
        s.push_level();
        s.fix(pd, 1).unwrap();
        s.fix(pe, 1).unwrap();
        s.fix(ld, 2).unwrap();
        e.fixpoint(&mut s).unwrap();
        assert_eq!(s.value(le), 2);
    }

    #[test]
    fn different_lines_forbid_shared_page() {
        let mut s = Store::new();
        let (pd, ld, pe, le) = vars(&mut s);
        let mut e = Engine::new();
        e.post(
            Box::new(PageLineImplies {
                page_d: pd,
                line_d: ld,
                page_e: pe,
                line_e: le,
            }),
            &s,
        );
        e.fixpoint(&mut s).unwrap();
        s.push_level();
        s.fix(ld, 0).unwrap();
        s.fix(le, 3).unwrap();
        s.fix(pd, 2).unwrap();
        e.fixpoint(&mut s).unwrap();
        assert!(!s.dom(pe).contains(2));
    }

    #[test]
    fn violated_implication_fails_hard() {
        let mut s = Store::new();
        let (pd, ld, pe, le) = vars(&mut s);
        let mut e = Engine::new();
        e.post(
            Box::new(PageLineImplies {
                page_d: pd,
                line_d: ld,
                page_e: pe,
                line_e: le,
            }),
            &s,
        );
        e.fixpoint(&mut s).unwrap();
        s.push_level();
        s.fix(pd, 1).unwrap();
        s.fix(pe, 1).unwrap();
        s.fix(ld, 0).unwrap();
        s.fix(le, 1).unwrap();
        assert!(e.fixpoint(&mut s).is_err());
    }

    #[test]
    fn guard_false_deactivates_everything() {
        let mut s = Store::new();
        let si = s.new_var(0, 0);
        let sj = s.new_var(5, 5);
        let (pd, ld, pe, le) = vars(&mut s);
        let mut e = Engine::new();
        e.post(
            Box::new(CondSameTime {
                s_i: si,
                s_j: sj,
                pairs: vec![GuardedPair {
                    page_d: pd,
                    line_d: ld,
                    page_e: pe,
                    line_e: le,
                }],
            }),
            &s,
        );
        e.fixpoint(&mut s).unwrap();
        s.push_level();
        // Even a violated pair is fine: ops run at different cycles.
        s.fix(pd, 1).unwrap();
        s.fix(pe, 1).unwrap();
        s.fix(ld, 0).unwrap();
        s.fix(le, 1).unwrap();
        assert!(e.fixpoint(&mut s).is_ok());
    }

    #[test]
    fn guard_true_enforces_pairs() {
        let mut s = Store::new();
        let si = s.new_var(4, 4);
        let sj = s.new_var(4, 4);
        let (pd, ld, pe, le) = vars(&mut s);
        let mut e = Engine::new();
        e.post(
            Box::new(CondSameTime {
                s_i: si,
                s_j: sj,
                pairs: vec![GuardedPair {
                    page_d: pd,
                    line_d: ld,
                    page_e: pe,
                    line_e: le,
                }],
            }),
            &s,
        );
        e.fixpoint(&mut s).unwrap();
        s.push_level();
        s.fix(pd, 2).unwrap();
        s.fix(pe, 2).unwrap();
        s.fix(ld, 1).unwrap();
        e.fixpoint(&mut s).unwrap();
        assert_eq!(s.value(le), 1);
    }

    #[test]
    fn violated_pair_separates_start_times() {
        let mut s = Store::new();
        let si = s.new_var(3, 3);
        let sj = s.new_var(0, 10);
        let (pd, ld, pe, le) = vars(&mut s);
        let mut e = Engine::new();
        e.post(
            Box::new(CondSameTime {
                s_i: si,
                s_j: sj,
                pairs: vec![GuardedPair {
                    page_d: pd,
                    line_d: ld,
                    page_e: pe,
                    line_e: le,
                }],
            }),
            &s,
        );
        e.fixpoint(&mut s).unwrap();
        s.push_level();
        s.fix(pd, 1).unwrap();
        s.fix(pe, 1).unwrap();
        s.fix(ld, 0).unwrap();
        s.fix(le, 2).unwrap();
        e.fixpoint(&mut s).unwrap();
        assert!(!s.dom(sj).contains(3));
    }
}
