//! Basic binary/n-ary propagators: equality with offset, disequality,
//! and `y = max(xs)`.

use crate::domain::DomainEvent;
use crate::engine::{Priority, Propagator, Subscriptions, Wake};
use crate::store::{Fail, PropResult, Store, VarId};

/// `y = x + c` (domain-consistent on bounds; value-consistent once one side
/// is fixed). Covers plain equality with `c = 0`.
///
/// This implements the paper's constraint (4): a data node starts exactly
/// when its producing operation's latency has elapsed.
pub struct XPlusCEqY {
    pub x: VarId,
    pub c: i32,
    pub y: VarId,
}

impl Propagator for XPlusCEqY {
    fn subscribe(&self, subs: &mut Subscriptions) {
        // Hole channeling means interior removals matter on both sides.
        subs.watch(self.x, DomainEvent::ANY);
        subs.watch(self.y, DomainEvent::ANY);
    }

    fn propagate(&mut self, s: &mut Store, _: &Wake<'_>) -> PropResult {
        // Bounds in both directions.
        s.remove_below(self.y, s.min(self.x).saturating_add(self.c))?;
        s.remove_above(self.y, s.max(self.x).saturating_add(self.c))?;
        s.remove_below(self.x, s.min(self.y).saturating_sub(self.c))?;
        s.remove_above(self.x, s.max(self.y).saturating_sub(self.c))?;
        // Exact channeling when either side has few values: intersect
        // shifted domains. Domains in the scheduling model are small, so
        // this stays cheap and gives full domain consistency.
        if s.dom(self.x).interval_count() > 1 || s.dom(self.y).interval_count() > 1 {
            let shifted_x =
                crate::domain::Domain::from_values(s.dom(self.x).iter().map(|v| v + self.c));
            s.intersect(self.y, &shifted_x)?;
            let shifted_y =
                crate::domain::Domain::from_values(s.dom(self.y).iter().map(|v| v - self.c));
            s.intersect(self.x, &shifted_y)?;
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "x+c=y"
    }

    fn priority(&self) -> Priority {
        Priority::Arith
    }

    fn idempotent(&self) -> bool {
        // One pass leaves y = x + c exactly (bounds then shifted-domain
        // intersection in both directions), so a re-run cannot prune —
        // unless x and y alias, when the channeling feeds itself.
        self.x != self.y
    }
}

/// `x + c ≤ y`: the precedence constraint (1) of the paper,
/// `s_i + l_i ≤ s_j`.
pub struct XPlusCLeqY {
    pub x: VarId,
    pub c: i32,
    pub y: VarId,
}

impl Propagator for XPlusCLeqY {
    fn subscribe(&self, subs: &mut Subscriptions) {
        // Only x's lower bound and y's upper bound feed the rules.
        subs.watch(self.x, DomainEvent::MIN);
        subs.watch(self.y, DomainEvent::MAX);
    }

    fn propagate(&mut self, s: &mut Store, _: &Wake<'_>) -> PropResult {
        s.remove_below(self.y, s.min(self.x).saturating_add(self.c))?;
        s.remove_above(self.x, s.max(self.y).saturating_sub(self.c))
    }

    fn name(&self) -> &'static str {
        "x+c<=y"
    }

    fn priority(&self) -> Priority {
        Priority::Arith
    }

    fn idempotent(&self) -> bool {
        // The run reads min(x)/max(y) and prunes min(y)/max(x): the
        // inputs of the rules are untouched by their own outputs —
        // unless x and y alias, when each prune shifts the next input.
        self.x != self.y
    }
}

/// `x ≠ y + c`: the same-configuration constraint (3) with `c = 0`,
/// and modular-offset disequalities in the modulo-scheduling model.
pub struct NeqOffset {
    pub x: VarId,
    pub y: VarId,
    pub c: i32,
}

impl Propagator for NeqOffset {
    fn subscribe(&self, subs: &mut Subscriptions) {
        // Filtering only triggers once a side becomes fixed.
        subs.watch(self.x, DomainEvent::FIX);
        subs.watch(self.y, DomainEvent::FIX);
    }

    fn propagate(&mut self, s: &mut Store, _: &Wake<'_>) -> PropResult {
        if let Some(vy) = s.dom(self.y).value() {
            s.remove_value(self.x, vy.saturating_add(self.c))?;
        }
        if let Some(vx) = s.dom(self.x).value() {
            s.remove_value(self.y, vx.saturating_sub(self.c))?;
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "neq"
    }

    fn priority(&self) -> Priority {
        Priority::Arith
    }

    fn idempotent(&self) -> bool {
        // If removing x's value fixes y, the y-side rule in the same run
        // already removes the (provably absent) mirror value from x.
        true
    }
}

/// `y = max(x_1, …, x_n)`, bounds-consistent.
///
/// Used for the makespan objective (5) and for data-node lifetimes (10),
/// where the lifetime end is the max of the consumers' start times.
pub struct MaxOf {
    pub xs: Vec<VarId>,
    pub y: VarId,
}

impl Propagator for MaxOf {
    fn subscribe(&self, subs: &mut Subscriptions) {
        // All rules are bounds-based; interior holes never matter.
        for &x in &self.xs {
            subs.watch(x, DomainEvent::BOUNDS);
        }
        subs.watch(self.y, DomainEvent::BOUNDS);
    }

    fn propagate(&mut self, s: &mut Store, _: &Wake<'_>) -> PropResult {
        if self.xs.is_empty() {
            return Err(Fail);
        }
        let mut max_of_maxes = i32::MIN;
        let mut max_of_mins = i32::MIN;
        for &x in &self.xs {
            max_of_maxes = max_of_maxes.max(s.max(x));
            max_of_mins = max_of_mins.max(s.min(x));
        }
        s.remove_above(self.y, max_of_maxes)?;
        s.remove_below(self.y, max_of_mins)?;
        let y_max = s.max(self.y);
        for &x in &self.xs {
            s.remove_above(x, y_max)?;
        }
        // If exactly one x can still reach y's lower bound, it must.
        let y_min = s.min(self.y);
        let mut candidates = self.xs.iter().filter(|&&x| s.max(x) >= y_min);
        if let (Some(&only), None) = (candidates.next(), candidates.next()) {
            s.remove_below(only, y_min)?;
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "max"
    }

    fn priority(&self) -> Priority {
        Priority::Arith
    }
}

/// `y = x₁ - x₂ + c` — helper for lifetime definition
/// `life_i = max(U_i) - s_i` once combined with [`MaxOf`].
pub struct DiffPlusC {
    pub x1: VarId,
    pub x2: VarId,
    pub c: i32,
    pub y: VarId,
}

impl Propagator for DiffPlusC {
    fn subscribe(&self, subs: &mut Subscriptions) {
        subs.watch(self.x1, DomainEvent::BOUNDS);
        subs.watch(self.x2, DomainEvent::BOUNDS);
        subs.watch(self.y, DomainEvent::BOUNDS);
    }

    fn propagate(&mut self, s: &mut Store, _: &Wake<'_>) -> PropResult {
        // y = x1 - x2 + c
        s.remove_below(self.y, s.min(self.x1) - s.max(self.x2) + self.c)?;
        s.remove_above(self.y, s.max(self.x1) - s.min(self.x2) + self.c)?;
        // x1 = y + x2 - c
        s.remove_below(self.x1, s.min(self.y) + s.min(self.x2) - self.c)?;
        s.remove_above(self.x1, s.max(self.y) + s.max(self.x2) - self.c)?;
        // x2 = x1 - y + c
        s.remove_below(self.x2, s.min(self.x1) - s.max(self.y) + self.c)?;
        s.remove_above(self.x2, s.max(self.x1) - s.min(self.y) + self.c)?;
        Ok(())
    }

    fn name(&self) -> &'static str {
        "diff+c"
    }

    fn priority(&self) -> Priority {
        Priority::Arith
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;

    fn run(e: &mut Engine, s: &mut Store) {
        e.fixpoint(s).unwrap();
    }

    #[test]
    fn eq_offset_channels_bounds() {
        let mut s = Store::new();
        let x = s.new_var(0, 10);
        let y = s.new_var(5, 20);
        let mut e = Engine::new();
        e.post(Box::new(XPlusCEqY { x, c: 3, y }), &s);
        run(&mut e, &mut s);
        assert_eq!((s.min(x), s.max(x)), (2, 10));
        assert_eq!((s.min(y), s.max(y)), (5, 13));
    }

    #[test]
    fn eq_offset_channels_holes() {
        let mut s = Store::new();
        let x = s.new_var(0, 10);
        let y = s.new_var(0, 20);
        let mut e = Engine::new();
        e.post(Box::new(XPlusCEqY { x, c: 0, y }), &s);
        run(&mut e, &mut s);
        s.push_level();
        s.remove_value(x, 5).unwrap();
        s.remove_value(x, 6).unwrap();
        run(&mut e, &mut s);
        assert!(!s.dom(y).contains(5));
        assert!(!s.dom(y).contains(6));
    }

    #[test]
    fn precedence_prunes_both_sides() {
        let mut s = Store::new();
        let x = s.new_var(0, 100);
        let y = s.new_var(0, 100);
        let mut e = Engine::new();
        e.post(Box::new(XPlusCLeqY { x, c: 7, y }), &s);
        run(&mut e, &mut s);
        assert_eq!(s.min(y), 7);
        assert_eq!(s.max(x), 93);
    }

    #[test]
    fn precedence_fails_when_impossible() {
        let mut s = Store::new();
        let x = s.new_var(10, 20);
        let y = s.new_var(0, 12);
        let mut e = Engine::new();
        e.post(Box::new(XPlusCLeqY { x, c: 7, y }), &s);
        assert!(e.fixpoint(&mut s).is_err());
    }

    #[test]
    fn neq_waits_until_fixed() {
        let mut s = Store::new();
        let x = s.new_var(0, 5);
        let y = s.new_var(0, 5);
        let mut e = Engine::new();
        e.post(Box::new(NeqOffset { x, y, c: 0 }), &s);
        run(&mut e, &mut s);
        assert_eq!(s.dom(x).size(), 6); // nothing yet
        s.push_level();
        s.fix(y, 3).unwrap();
        run(&mut e, &mut s);
        assert!(!s.dom(x).contains(3));
    }

    #[test]
    fn neq_detects_conflict() {
        let mut s = Store::new();
        let x = s.new_var(4, 4);
        let y = s.new_var(4, 4);
        let mut e = Engine::new();
        e.post(Box::new(NeqOffset { x, y, c: 0 }), &s);
        assert!(e.fixpoint(&mut s).is_err());
    }

    #[test]
    fn max_bounds() {
        let mut s = Store::new();
        let a = s.new_var(0, 4);
        let b = s.new_var(2, 9);
        let y = s.new_var(0, 100);
        let mut e = Engine::new();
        e.post(Box::new(MaxOf { xs: vec![a, b], y }), &s);
        run(&mut e, &mut s);
        assert_eq!((s.min(y), s.max(y)), (2, 9));
        s.push_level();
        s.remove_above(y, 6).unwrap();
        run(&mut e, &mut s);
        assert_eq!(s.max(b), 6);
        assert_eq!(s.max(a), 4);
    }

    #[test]
    fn max_forces_unique_support() {
        let mut s = Store::new();
        let a = s.new_var(0, 3);
        let b = s.new_var(0, 9);
        let y = s.new_var(8, 9);
        let mut e = Engine::new();
        e.post(Box::new(MaxOf { xs: vec![a, b], y }), &s);
        run(&mut e, &mut s);
        // only b can reach 8 → b ≥ 8
        assert_eq!(s.min(b), 8);
    }

    #[test]
    fn diff_plus_c_all_directions() {
        let mut s = Store::new();
        let x1 = s.new_var(10, 20);
        let x2 = s.new_var(0, 5);
        let y = s.new_var(-100, 100);
        let mut e = Engine::new();
        e.post(Box::new(DiffPlusC { x1, x2, c: 0, y }), &s);
        run(&mut e, &mut s);
        assert_eq!((s.min(y), s.max(y)), (5, 20));
        s.push_level();
        s.remove_above(y, 8).unwrap();
        run(&mut e, &mut s);
        // x1 ≤ y.max + x2.max = 8 + 5 = 13
        assert_eq!(s.max(x1), 13);
        // x2 ≥ x1.min - y.max = 10 - 8 = 2
        assert_eq!(s.min(x2), 2);
    }
}
