//! The `Cumulative` global constraint (Aggoun & Beldiceanu, 1993) with
//! time-table filtering.
//!
//! Given tasks with start variables, fixed durations and fixed resource
//! requirements, enforces that at every time point the sum of requirements
//! of running tasks stays within `capacity`. This is the paper's
//! constraint (2): the vector core's four lanes (vector op r=1, matrix op
//! r=4, duration 1 cc), and the unit-capacity accelerator and index/merge
//! units.
//!
//! Filtering performed each wake-up:
//! 1. build the *compulsory-part* profile (the resource use every task must
//!    exert regardless of its final start: interval `[lst, ect)` when
//!    `lst < ect`); fail on capacity overflow;
//! 2. for every task and candidate start value, remove the value if the
//!    profile (minus the task's own compulsory contribution) plus the
//!    task's requirement would exceed capacity anywhere in the execution
//!    window.

use crate::domain::DomainEvent;
use crate::engine::{Priority, Propagator, Subscriptions, Wake};
use crate::store::{Fail, PropResult, Store, VarId};

/// One task of a cumulative resource.
#[derive(Clone, Copy, Debug)]
pub struct CumTask {
    pub start: VarId,
    /// Fixed duration ≥ 0. Zero-duration tasks are ignored.
    pub dur: i32,
    /// Fixed resource requirement ≥ 0. Zero-requirement tasks are ignored.
    pub req: i32,
}

pub struct Cumulative {
    pub tasks: Vec<CumTask>,
    pub capacity: i32,
    /// Scratch profile events, kept across calls to avoid reallocation.
    events: Vec<(i32, i32)>,
}

impl Cumulative {
    pub fn new(tasks: Vec<CumTask>, capacity: i32) -> Self {
        assert!(capacity >= 0);
        let tasks: Vec<CumTask> = tasks
            .into_iter()
            .filter(|t| t.dur > 0 && t.req > 0)
            .collect();
        Cumulative {
            tasks,
            capacity,
            events: Vec::new(),
        }
    }

    /// Compulsory part of task `t`: `[lst, ect)` if non-empty.
    fn compulsory(s: &Store, t: &CumTask) -> Option<(i32, i32)> {
        let lst = s.max(t.start);
        let ect = s.min(t.start) + t.dur;
        (lst < ect).then_some((lst, ect))
    }

    /// Energetic (overload) check: for every window `[a, b)` spanned by
    /// task release/deadline pairs, the total energy of tasks that must
    /// run entirely inside it cannot exceed `capacity * (b - a)`. Catches
    /// infeasibilities time-table filtering misses while domains are still
    /// loose (no compulsory parts yet).
    fn energetic_check(&self, s: &Store) -> PropResult {
        let n = self.tasks.len();
        if n < 2 {
            return Ok(());
        }
        // (est, lct, energy), sorted by est descending for the inner scan.
        let mut info: Vec<(i32, i32, i64)> = self
            .tasks
            .iter()
            .map(|t| {
                (
                    s.min(t.start),
                    s.max(t.start) + t.dur,
                    t.dur as i64 * t.req as i64,
                )
            })
            .collect();
        info.sort_by_key(|&(est, _, _)| std::cmp::Reverse(est));
        let mut lcts: Vec<i32> = info.iter().map(|&(_, lct, _)| lct).collect();
        lcts.sort_unstable();
        lcts.dedup();
        for &b in &lcts {
            // Walk ests from high to low, accumulating energy of tasks
            // fully inside [est, b).
            let mut energy = 0i64;
            for &(a, lct, e) in &info {
                if lct <= b {
                    energy += e;
                    if a < b && energy > self.capacity as i64 * (b - a) as i64 {
                        return Err(Fail);
                    }
                }
            }
        }
        Ok(())
    }
}

/// Piecewise-constant resource profile built from compulsory parts:
/// `steps[k] = (t_k, h_k)` means height `h_k` on `[t_k, t_{k+1})`; height is
/// 0 before the first and after the last breakpoint.
struct Profile {
    steps: Vec<(i32, i32)>,
}

impl Profile {
    fn build(events: &[(i32, i32)]) -> Self {
        let mut steps = Vec::with_capacity(events.len() + 1);
        let mut h = 0;
        let mut i = 0;
        while i < events.len() {
            let t = events[i].0;
            while i < events.len() && events[i].0 == t {
                h += events[i].1;
                i += 1;
            }
            steps.push((t, h));
        }
        Profile { steps }
    }

    /// Max height over `[from, to)`, subtracting `own_req` wherever the
    /// interval `own` overlaps (the task's own compulsory contribution).
    fn max_in(&self, from: i32, to: i32, own: Option<(i32, i32)>, own_req: i32) -> i32 {
        if from >= to {
            return 0;
        }
        // Index of the step active at `from`: last step with t ≤ from.
        let mut idx = match self.steps.binary_search_by_key(&from, |&(t, _)| t) {
            Ok(i) => i as isize,
            Err(i) => i as isize - 1,
        };
        let mut best = 0;
        loop {
            let (seg_start, h) = if idx < 0 {
                (i32::MIN, 0)
            } else {
                self.steps[idx as usize]
            };
            let seg_end = self
                .steps
                .get((idx + 1) as usize)
                .map_or(i32::MAX, |&(t, _)| t);
            let lo = seg_start.max(from);
            let hi = seg_end.min(to);
            if lo < hi {
                // Does the own compulsory part cover this whole sub-segment,
                // part of it, or none? Split mentally: the max over the
                // sub-segment is h minus own_req only where own covers it.
                match own {
                    Some((oa, ob)) if oa < hi && ob > lo => {
                        // Portion covered by own: height h - own_req;
                        // uncovered portion (if any): height h.
                        if oa > lo || ob < hi {
                            best = best.max(h);
                        } else {
                            best = best.max(h - own_req);
                        }
                        if oa <= lo && ob >= hi {
                            best = best.max(h - own_req);
                        }
                    }
                    _ => best = best.max(h),
                }
            }
            if seg_end >= to {
                break;
            }
            idx += 1;
        }
        best
    }
}

impl Propagator for Cumulative {
    fn subscribe(&self, subs: &mut Subscriptions) {
        // Compulsory parts and execution windows are bound-derived:
        // interior holes in a start domain change neither the profile nor
        // any other task's filtering, so they need not wake us. The tag
        // is the task index, enabling incremental phase-2 filtering.
        for (i, t) in self.tasks.iter().enumerate() {
            subs.watch_tagged(t.start, DomainEvent::BOUNDS, i as u32);
        }
    }

    fn propagate(&mut self, s: &mut Store, wake: &Wake<'_>) -> PropResult {
        // Phase 0: energetic overload check over release/deadline windows.
        // Always global: failure detection must not depend on wake info,
        // or the event engine would explore nodes the baseline refutes.
        self.energetic_check(s)?;
        // Phase 1: overload check on the compulsory-part profile.
        self.events.clear();
        for t in &self.tasks {
            if let Some((a, b)) = Self::compulsory(s, t) {
                self.events.push((a, t.req));
                self.events.push((b, -t.req));
            }
        }
        self.events.sort_unstable();
        let mut h = 0;
        for &(_, d) in &self.events {
            h += d;
            if h > self.capacity {
                return Err(Fail);
            }
        }

        // Phase 2: value pruning. Build the profile once, then for each
        // task and candidate start value v, the task occupies [v, v+dur) at
        // height req; reject v if any point of that window, on the profile
        // minus the task's own compulsory part, would exceed capacity.
        //
        // Incremental narrowing: on a tagged wake, only the profile under
        // the dirty tasks' (current) compulsory parts can have risen since
        // our previous run — compulsory parts only grow as domains shrink.
        // A task that is not itself dirty and whose execution window
        // misses every dirty compulsory part was filtered clean before
        // and provably still is, so it is skipped.
        let profile = Profile::build(&self.events);
        let mut dirty_tasks: Vec<bool> = Vec::new();
        let mut dirty_parts: Vec<(i32, i32)> = Vec::new();
        let incremental = !wake.rescan();
        if incremental {
            dirty_tasks = vec![false; self.tasks.len()];
            for &tag in wake.tags() {
                dirty_tasks[tag as usize] = true;
                if let Some(part) = Self::compulsory(s, &self.tasks[tag as usize]) {
                    dirty_parts.push(part);
                }
            }
        }
        for (i, &t) in self.tasks.iter().enumerate() {
            if s.is_fixed(t.start) {
                // Fixed tasks are fully represented in the profile already;
                // the overload check covers them.
                continue;
            }
            if incremental && !dirty_tasks[i] {
                // Execution window [est, lst + dur).
                let (wa, wb) = (s.min(t.start), s.max(t.start) + t.dur);
                if !dirty_parts.iter().any(|&(a, b)| a < wb && wa < b) {
                    continue;
                }
            }
            let own = Self::compulsory(s, &t);
            let mut to_remove: Vec<i32> = Vec::new();
            // Collect candidate values first (cannot mutate while iterating).
            let candidates: Vec<i32> = s.dom(t.start).iter().collect();
            for v in candidates {
                let peak = profile.max_in(v, v + t.dur, own, t.req);
                if peak + t.req > self.capacity {
                    to_remove.push(v);
                }
            }
            for v in to_remove {
                s.remove_value(t.start, v)?;
            }
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "cumulative"
    }

    fn priority(&self) -> Priority {
        Priority::Global
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;

    fn cum(s: &Store, specs: &[(VarId, i32, i32)], cap: i32) -> Cumulative {
        let _ = s;
        Cumulative::new(
            specs
                .iter()
                .map(|&(start, dur, req)| CumTask { start, dur, req })
                .collect(),
            cap,
        )
    }

    #[test]
    fn overload_of_fixed_tasks_fails() {
        let mut s = Store::new();
        let a = s.new_var(0, 0);
        let b = s.new_var(0, 0);
        let mut e = Engine::new();
        e.post(Box::new(cum(&s, &[(a, 1, 3), (b, 1, 3)], 4)), &s);
        assert!(e.fixpoint(&mut s).is_err());
    }

    #[test]
    fn capacity_respected_at_exact_fit() {
        let mut s = Store::new();
        let a = s.new_var(0, 0);
        let b = s.new_var(0, 0);
        let mut e = Engine::new();
        e.post(Box::new(cum(&s, &[(a, 1, 2), (b, 1, 2)], 4)), &s);
        assert!(e.fixpoint(&mut s).is_ok());
    }

    #[test]
    fn compulsory_part_pushes_competitor() {
        let mut s = Store::new();
        // Task a fixed at [0,4) with req 3 of cap 4.
        let a = s.new_var(0, 0);
        // Task b (req 2) cannot start anywhere in [0,4) − its own dur window.
        let b = s.new_var(0, 10);
        let mut e = Engine::new();
        e.post(Box::new(cum(&s, &[(a, 4, 3), (b, 2, 2)], 4)), &s);
        e.fixpoint(&mut s).unwrap();
        // b's window [v, v+2) must avoid [0,4) entirely → v ≥ 4.
        assert_eq!(s.min(b), 4);
    }

    #[test]
    fn partial_compulsory_part_prunes_middle_values() {
        let mut s = Store::new();
        // a ∈ [2,4], dur 4 → compulsory [4, 6).
        let a = s.new_var(2, 4);
        let b = s.new_var(0, 20);
        let mut e = Engine::new();
        e.post(Box::new(cum(&s, &[(a, 4, 3), (b, 1, 2)], 4)), &s);
        e.fixpoint(&mut s).unwrap();
        // b (req 2) cannot sit inside [4,6) where height is 3.
        assert!(!s.dom(b).contains(4));
        assert!(!s.dom(b).contains(5));
        assert!(s.dom(b).contains(3));
        assert!(s.dom(b).contains(6));
    }

    #[test]
    fn matrix_op_excludes_vector_ops_at_same_cycle() {
        // Paper semantics: matrix op takes all 4 lanes for 1 cc.
        let mut s = Store::new();
        let m = s.new_var(3, 3); // matrix op fixed at cycle 3
        let v1 = s.new_var(0, 6);
        let v2 = s.new_var(0, 6);
        let mut e = Engine::new();
        e.post(
            Box::new(cum(&s, &[(m, 1, 4), (v1, 1, 1), (v2, 1, 1)], 4)),
            &s,
        );
        e.fixpoint(&mut s).unwrap();
        assert!(!s.dom(v1).contains(3));
        assert!(!s.dom(v2).contains(3));
    }

    #[test]
    fn four_lanes_hold_four_vector_ops() {
        let mut s = Store::new();
        let vs: Vec<VarId> = (0..4).map(|_| s.new_var(0, 0)).collect();
        let specs: Vec<(VarId, i32, i32)> = vs.iter().map(|&v| (v, 1, 1)).collect();
        let mut e = Engine::new();
        e.post(Box::new(cum(&s, &specs, 4)), &s);
        assert!(e.fixpoint(&mut s).is_ok());
    }

    #[test]
    fn fifth_vector_op_is_displaced() {
        let mut s = Store::new();
        let mut specs = Vec::new();
        for _ in 0..4 {
            let v = s.new_var(0, 0);
            specs.push((v, 1, 1));
        }
        let fifth = s.new_var(0, 5);
        specs.push((fifth, 1, 1));
        let mut e = Engine::new();
        e.post(Box::new(cum(&s, &specs, 4)), &s);
        e.fixpoint(&mut s).unwrap();
        assert_eq!(s.min(fifth), 1);
    }

    #[test]
    fn energetic_check_sees_loose_overload() {
        // 16 unit tasks in a 2-slot window of capacity 4: no task has a
        // compulsory part, but the energy 16 > 4*2 = 8.
        let mut s = Store::new();
        let specs: Vec<(VarId, i32, i32)> = (0..16).map(|_| (s.new_var(0, 1), 1, 1)).collect();
        let mut e = Engine::new();
        e.post(Box::new(cum(&s, &specs, 4)), &s);
        assert!(e.fixpoint(&mut s).is_err());
    }

    #[test]
    fn energetic_check_accepts_exact_fit() {
        // 8 unit tasks in a 2-slot window of capacity 4: energy 8 = 8.
        let mut s = Store::new();
        let specs: Vec<(VarId, i32, i32)> = (0..8).map(|_| (s.new_var(0, 1), 1, 1)).collect();
        let mut e = Engine::new();
        e.post(Box::new(cum(&s, &specs, 4)), &s);
        assert!(e.fixpoint(&mut s).is_ok());
    }

    #[test]
    fn energetic_check_uses_tight_subwindows() {
        // 3 fixed 2-cycle unit tasks share [5,7) on a unit machine:
        // energy 6 > 1 * 2 - caught without any search.
        let mut s = Store::new();
        let specs: Vec<(VarId, i32, i32)> = (0..3).map(|_| (s.new_var(5, 5), 2, 1)).collect();
        let mut e = Engine::new();
        e.post(Box::new(cum(&s, &specs, 1)), &s);
        assert!(e.fixpoint(&mut s).is_err());
    }

    #[test]
    fn zero_req_and_zero_dur_tasks_ignored() {
        let mut s = Store::new();
        let a = s.new_var(0, 0);
        let b = s.new_var(0, 0);
        let c = s.new_var(0, 0);
        let mut e = Engine::new();
        e.post(Box::new(cum(&s, &[(a, 1, 5), (b, 0, 9), (c, 1, 0)], 5)), &s);
        assert!(e.fixpoint(&mut s).is_ok());
    }
}
