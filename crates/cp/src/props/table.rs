//! The extensional (`Table`) constraint: a tuple of variables must take
//! one of an explicit list of allowed value combinations.
//!
//! Filtering is generalised arc consistency by simple tabular reduction:
//! tuples invalidated by current domains are disabled (per search node,
//! recomputed on each call — the tuple lists in scheduling models are
//! small), and every value without a supporting live tuple is pruned.
//! Configuration legality tables (e.g. "which vector-core configuration
//! may follow which without a stall") are the intended use.

use crate::domain::{Domain, DomainEvent};
use crate::engine::{Priority, Propagator, Subscriptions, Wake};
use crate::store::{Fail, PropResult, Store, VarId};

pub struct Table {
    pub vars: Vec<VarId>,
    pub tuples: Vec<Vec<i32>>,
}

impl Table {
    pub fn new(vars: Vec<VarId>, tuples: Vec<Vec<i32>>) -> Self {
        for t in &tuples {
            assert_eq!(t.len(), vars.len(), "tuple arity mismatch");
        }
        Table { vars, tuples }
    }
}

impl Propagator for Table {
    fn subscribe(&self, subs: &mut Subscriptions) {
        // GAC over explicit tuples: any removal can kill a support.
        for &v in &self.vars {
            subs.watch(v, DomainEvent::ANY);
        }
    }

    fn propagate(&mut self, s: &mut Store, _: &Wake<'_>) -> PropResult {
        let k = self.vars.len();
        // Live tuples under the current domains.
        let live: Vec<&Vec<i32>> = self
            .tuples
            .iter()
            .filter(|t| {
                t.iter()
                    .zip(&self.vars)
                    .all(|(&v, &x)| s.dom(x).contains(v))
            })
            .collect();
        if live.is_empty() {
            return Err(Fail);
        }
        // Supported values per position.
        for i in 0..k {
            let support = Domain::from_values(live.iter().map(|t| t[i]));
            s.intersect(self.vars[i], &support)?;
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "table"
    }

    fn priority(&self) -> Priority {
        Priority::Global
    }

    fn idempotent(&self) -> bool {
        // Simple tabular reduction is a one-pass fixpoint only when the
        // variables are pairwise distinct: with a repeated variable the
        // per-position intersections interact through the shared domain
        // and can kill tuples that were live at the start of the pass.
        let mut vs: Vec<usize> = self.vars.iter().map(|v| v.idx()).collect();
        vs.sort_unstable();
        vs.windows(2).all(|w| w[0] != w[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;

    fn setup(domains: &[(i32, i32)], tuples: Vec<Vec<i32>>) -> (Store, Engine, Vec<VarId>) {
        let mut s = Store::new();
        let vars: Vec<VarId> = domains.iter().map(|&(l, h)| s.new_var(l, h)).collect();
        let mut e = Engine::new();
        e.post(Box::new(Table::new(vars.clone(), tuples)), &s);
        (s, e, vars)
    }

    #[test]
    fn initial_domains_reduce_to_supported_values() {
        let (mut s, mut e, v) = setup(&[(0, 9), (0, 9)], vec![vec![1, 5], vec![2, 6], vec![2, 7]]);
        e.fixpoint(&mut s).unwrap();
        assert_eq!(s.dom(v[0]).iter().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(s.dom(v[1]).iter().collect::<Vec<_>>(), vec![5, 6, 7]);
    }

    #[test]
    fn fixing_one_var_propagates_to_others() {
        let (mut s, mut e, v) = setup(
            &[(0, 9), (0, 9), (0, 9)],
            vec![vec![1, 5, 0], vec![2, 6, 1], vec![2, 7, 1]],
        );
        e.fixpoint(&mut s).unwrap();
        s.push_level();
        s.fix(v[0], 2).unwrap();
        e.fixpoint(&mut s).unwrap();
        assert_eq!(s.value(v[2]), 1);
        assert_eq!(s.dom(v[1]).iter().collect::<Vec<_>>(), vec![6, 7]);
    }

    #[test]
    fn no_live_tuple_fails() {
        let (mut s, mut e, v) = setup(&[(0, 9), (0, 9)], vec![vec![1, 5], vec![2, 6]]);
        e.fixpoint(&mut s).unwrap();
        s.push_level();
        s.fix(v[0], 1).unwrap();
        s.remove_value(v[1], 5).unwrap();
        assert!(e.fixpoint(&mut s).is_err());
    }

    #[test]
    fn gac_prunes_unsupported_interior_values() {
        // v0 ∈ {0,1,2}; tuples support only 0 and 2 → 1 pruned directly.
        let (mut s, mut e, v) = setup(&[(0, 2), (0, 2)], vec![vec![0, 0], vec![2, 2]]);
        e.fixpoint(&mut s).unwrap();
        assert!(!s.dom(v[0]).contains(1));
        assert!(!s.dom(v[1]).contains(1));
    }

    #[test]
    fn works_under_search() {
        use crate::model::Model;
        use crate::search::{solve, Phase, SearchConfig, ValSel, VarSel};
        // A "legal configuration successor" table.
        let mut m = Model::new();
        let a = m.new_var(0, 3);
        let b = m.new_var(0, 3);
        let c = m.new_var(0, 3);
        let succ = vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 0]];
        m.post(Box::new(Table::new(vec![a, b], succ.clone())));
        m.post(Box::new(Table::new(vec![b, c], succ)));
        let cfg = SearchConfig {
            phases: vec![Phase::new(vec![a, b, c], VarSel::InputOrder, ValSel::Min)],
            ..Default::default()
        };
        let r = solve(&mut m, &cfg);
        let sol = r.best.unwrap();
        // Chain must follow the cycle: a→a+1→a+2 (mod 4).
        assert_eq!((sol.value(a) + 1) % 4, sol.value(b));
        assert_eq!((sol.value(b) + 1) % 4, sol.value(c));
    }
}
