//! The `Diff2` global constraint (Beldiceanu & Contejean, 1994):
//! pairwise non-overlap of rectangles in two dimensions.
//!
//! A rectangle is `[origin₁, origin₂, length₁, length₂]` where origins and
//! lengths are finite-domain variables (lengths are variables because the
//! paper's constraint (11) uses data-node *lifetimes* — themselves derived
//! variables — as rectangle lengths). Two rectangles do not overlap iff
//! there is a dimension in which one ends no later than the other begins.
//! Zero-length rectangles occupy nothing and never conflict.
//!
//! Filtering: for every pair, if overlap in one dimension is *forced*
//! (neither ordering can separate them there), the pair becomes a
//! disjunctive constraint in the other dimension, pruned with standard
//! edge-finding-style bounds rules; if separation is impossible in both
//! dimensions, fail.

use crate::domain::DomainEvent;
use crate::engine::{Priority, Propagator, Subscriptions, Wake};
use crate::store::{Fail, PropResult, Store, VarId};

/// A rectangle of the `Diff2` constraint.
#[derive(Clone, Copy, Debug)]
pub struct Rect {
    pub origin: [VarId; 2],
    pub len: [VarId; 2],
}

pub struct Diff2 {
    pub rects: Vec<Rect>,
}

impl Diff2 {
    pub fn new(rects: Vec<Rect>) -> Self {
        Diff2 { rects }
    }

    /// Can rectangle `a` end no later than `b` begins in dimension `d`
    /// under *some* assignment? (`min end_a ≤ max start_b`)
    fn can_precede(s: &Store, a: &Rect, b: &Rect, d: usize) -> bool {
        s.min(a.origin[d]) + s.min(a.len[d]) <= s.max(b.origin[d])
    }

    /// Enforce `a` before `b` in dimension `d`: `o_a + l_a ≤ o_b`.
    fn enforce_before(s: &mut Store, a: &Rect, b: &Rect, d: usize) -> PropResult {
        s.remove_below(b.origin[d], s.min(a.origin[d]) + s.min(a.len[d]))?;
        s.remove_above(a.origin[d], s.max(b.origin[d]) - s.min(a.len[d]))?;
        s.remove_above(a.len[d], s.max(b.origin[d]) - s.min(a.origin[d]))?;
        Ok(())
    }

    /// A rectangle with possibly-zero length in some dimension never
    /// conflicts once its length can be zero — only treat it as solid when
    /// its minimal lengths are positive in both dimensions… except we must
    /// still separate if lengths are forced positive.
    fn may_be_empty(s: &Store, r: &Rect) -> bool {
        s.min(r.len[0]) <= 0 || s.min(r.len[1]) <= 0
    }
}

impl Diff2 {
    /// Pigeonhole check along dimension 0: if at some point `t` more
    /// rectangles *must* overlap `t` (their dim-0 occupancy is compulsory
    /// there) than there are rows available in dimension 1, fail. This
    /// catches k-clique infeasibilities (e.g. "8 data alive at cycle 0 in
    /// 7 slots") that pairwise filtering cannot see.
    fn pigeonhole(&self, s: &Store) -> PropResult {
        let mut rows_min = i64::MAX;
        let mut rows_max = i64::MIN;
        let mut events: Vec<(i32, i32)> = Vec::new();
        for r in &self.rects {
            if Self::may_be_empty(s, r) {
                continue;
            }
            rows_min = rows_min.min(s.min(r.origin[1]) as i64);
            rows_max = rows_max.max(s.max(r.origin[1]) as i64 + s.min(r.len[1]) as i64 - 1);
            // Compulsory dim-0 part: [lst, ect) if non-empty; each rect
            // consumes its (minimal) height in rows while it lives.
            let lst = s.max(r.origin[0]);
            let ect = s.min(r.origin[0]) + s.min(r.len[0]);
            if lst < ect {
                let h = s.min(r.len[1]);
                events.push((lst, h));
                events.push((ect, -h));
            }
        }
        if events.is_empty() || rows_min > rows_max {
            return Ok(());
        }
        let rows = rows_max - rows_min + 1;
        events.sort_unstable();
        let mut live: i64 = 0;
        for &(_, d) in &events {
            live += d as i64;
            if live > rows {
                return Err(Fail);
            }
        }
        Ok(())
    }
}

impl Propagator for Diff2 {
    fn subscribe(&self, subs: &mut Subscriptions) {
        // All four vars of a rect feed only bound computations (min/max
        // of origins and lengths), so interior holes never matter. All
        // four carry the rect index as tag for incremental pair work.
        for (i, r) in self.rects.iter().enumerate() {
            for &v in r.origin.iter().chain(r.len.iter()) {
                subs.watch_tagged(v, DomainEvent::BOUNDS, i as u32);
            }
        }
    }

    fn propagate(&mut self, s: &mut Store, wake: &Wake<'_>) -> PropResult {
        // The pigeonhole sweep stays global so failure detection is
        // identical to the FIFO baseline's.
        self.pigeonhole(s)?;
        let n = self.rects.len();
        // Pairs where neither rect moved a bound since our previous run
        // were examined clean then and read only unchanged values: skip.
        let mut dirty: Vec<bool> = Vec::new();
        if !wake.rescan() {
            dirty = vec![false; n];
            for &tag in wake.tags() {
                dirty[tag as usize] = true;
            }
        }
        for i in 0..n {
            for j in (i + 1)..n {
                if !dirty.is_empty() && !dirty[i] && !dirty[j] {
                    continue;
                }
                let (a, b) = (self.rects[i], self.rects[j]);
                if Self::may_be_empty(s, &a) || Self::may_be_empty(s, &b) {
                    continue;
                }
                // Per dimension: which orderings remain possible?
                // sep[d][0] = a-before-b possible, sep[d][1] = b-before-a.
                let mut sep = [[false; 2]; 2];
                for (d, sd) in sep.iter_mut().enumerate() {
                    sd[0] = Self::can_precede(s, &a, &b, d);
                    sd[1] = Self::can_precede(s, &b, &a, d);
                }
                let dim_possible = [sep[0][0] || sep[0][1], sep[1][0] || sep[1][1]];
                match (dim_possible[0], dim_possible[1]) {
                    (false, false) => return Err(Fail),
                    (false, true) => {
                        // Must separate in dim 1.
                        match (sep[1][0], sep[1][1]) {
                            (true, false) => Self::enforce_before(s, &a, &b, 1)?,
                            (false, true) => Self::enforce_before(s, &b, &a, 1)?,
                            _ => {}
                        }
                    }
                    (true, false) => {
                        // Must separate in dim 0.
                        match (sep[0][0], sep[0][1]) {
                            (true, false) => Self::enforce_before(s, &a, &b, 0)?,
                            (false, true) => Self::enforce_before(s, &b, &a, 0)?,
                            _ => {}
                        }
                    }
                    (true, true) => {
                        // If everything is fixed, verify no overlap remains.
                        // (can_precede used min-end vs max-start, so with all
                        // vars fixed, dim_possible already reflects truth —
                        // nothing to do.)
                    }
                }
            }
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "diff2"
    }

    fn priority(&self) -> Priority {
        Priority::Global
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;

    /// Helper: fixed-length rectangle with variable origins.
    fn rect(s: &mut Store, x: (i32, i32), y: (i32, i32), w: i32, h: i32) -> Rect {
        Rect {
            origin: [s.new_var(x.0, x.1), s.new_var(y.0, y.1)],
            len: [s.new_const(w), s.new_const(h)],
        }
    }

    #[test]
    fn fixed_overlapping_rects_fail() {
        let mut s = Store::new();
        let a = rect(&mut s, (0, 0), (0, 0), 2, 2);
        let b = rect(&mut s, (1, 1), (1, 1), 2, 2);
        let mut e = Engine::new();
        e.post(Box::new(Diff2::new(vec![a, b])), &s);
        assert!(e.fixpoint(&mut s).is_err());
    }

    #[test]
    fn touching_rects_are_fine() {
        let mut s = Store::new();
        let a = rect(&mut s, (0, 0), (0, 0), 2, 2);
        let b = rect(&mut s, (2, 2), (0, 0), 2, 2);
        let mut e = Engine::new();
        e.post(Box::new(Diff2::new(vec![a, b])), &s);
        assert!(e.fixpoint(&mut s).is_ok());
    }

    #[test]
    fn forced_x_overlap_separates_in_y() {
        let mut s = Store::new();
        // Both occupy x ∈ [0,4) — forced overlap in x.
        let a = rect(&mut s, (0, 0), (0, 5), 4, 1);
        let b = rect(&mut s, (0, 0), (0, 0), 4, 2);
        let mut e = Engine::new();
        e.post(Box::new(Diff2::new(vec![a, b])), &s);
        e.fixpoint(&mut s).unwrap();
        // b fixed at y=0 height 2 → a.y ≥ 2.
        assert_eq!(s.min(a.origin[1]), 2);
    }

    #[test]
    fn slot_style_allocation_three_lifetimes_two_slots() {
        // Memory-allocation shape: x = time (fixed), y = slot ∈ {0,1},
        // three rectangles with overlapping lifetimes cannot fit 2 slots.
        let mut s = Store::new();
        let mut rects = Vec::new();
        for _ in 0..3 {
            let x = s.new_const(0);
            let y = s.new_var(0, 1);
            rects.push(Rect {
                origin: [x, y],
                len: [s.new_const(10), s.new_const(1)],
            });
        }
        let mut e = Engine::new();
        e.post(Box::new(Diff2::new(rects)), &s);
        // The pigeonhole sweep sees three compulsory lifetimes over two
        // rows immediately.
        assert!(e.fixpoint(&mut s).is_err());
    }

    #[test]
    fn disjoint_lifetimes_share_a_slot() {
        let mut s = Store::new();
        let t0 = s.new_const(0);
        let t10 = s.new_const(10);
        let y0 = s.new_var(0, 0);
        let y1 = s.new_var(0, 0);
        let l = s.new_const(10);
        let one = s.new_const(1);
        let rects = vec![
            Rect {
                origin: [t0, y0],
                len: [l, one],
            },
            Rect {
                origin: [t10, y1],
                len: [l, one],
            },
        ];
        let mut e = Engine::new();
        e.post(Box::new(Diff2::new(rects)), &s);
        assert!(e.fixpoint(&mut s).is_ok());
    }

    #[test]
    fn zero_length_rect_never_conflicts() {
        let mut s = Store::new();
        let a = rect(&mut s, (0, 0), (0, 0), 5, 5);
        // Zero-width rectangle at the same place.
        let x = s.new_const(2);
        let y = s.new_const(2);
        let zero = s.new_const(0);
        let one = s.new_const(1);
        let b = Rect {
            origin: [x, y],
            len: [zero, one],
        };
        let mut e = Engine::new();
        e.post(Box::new(Diff2::new(vec![a, b])), &s);
        assert!(e.fixpoint(&mut s).is_ok());
    }

    #[test]
    fn variable_length_prunes_when_forced() {
        let mut s = Store::new();
        // a: x ∈ {0}, len ∈ [1, 10]; b fixed at x=4, same y row.
        let ax = s.new_const(0);
        let ay = s.new_const(0);
        let alen = s.new_var(1, 10);
        let one = s.new_const(1);
        let a = Rect {
            origin: [ax, ay],
            len: [alen, one],
        };
        let b = rect(&mut s, (4, 4), (0, 0), 3, 1);
        let mut e = Engine::new();
        e.post(Box::new(Diff2::new(vec![a, b])), &s);
        e.fixpoint(&mut s).unwrap();
        // Forced y-overlap; a can only precede b in x → len ≤ 4.
        assert_eq!(s.max(alen), 4);
    }
}
