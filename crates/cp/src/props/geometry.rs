//! Slot/line/page channeling for the EIT vector memory (constraint
//! group (6) of the paper):
//!
//! ```text
//! line_i = slot_i / nOfBanks
//! page_i = (slot_i mod nOfBanks) / pageSize
//! ```
//!
//! Slots are enumerated linearly: slot 0 is the first slot of bank 0,
//! slot 1 the first slot of bank 1, …, slot 16 the second slot of bank 0
//! (for 16 banks). Slot domains are small (tens to a few hundred values),
//! so this propagator achieves *domain* consistency by explicit value maps
//! in both directions.

use crate::domain::{Domain, DomainEvent};
use crate::engine::{Priority, Propagator, Subscriptions, Wake};
use crate::store::{PropResult, Store, VarId};

pub struct SlotGeometry {
    pub slot: VarId,
    pub line: VarId,
    pub page: VarId,
    pub n_banks: i32,
    pub page_size: i32,
}

impl SlotGeometry {
    pub fn new(slot: VarId, line: VarId, page: VarId, n_banks: i32, page_size: i32) -> Self {
        assert!(n_banks > 0 && page_size > 0);
        SlotGeometry {
            slot,
            line,
            page,
            n_banks,
            page_size,
        }
    }

    #[inline]
    fn line_of(&self, slot: i32) -> i32 {
        slot.div_euclid(self.n_banks)
    }

    #[inline]
    fn page_of(&self, slot: i32) -> i32 {
        slot.rem_euclid(self.n_banks) / self.page_size
    }
}

impl Propagator for SlotGeometry {
    fn subscribe(&self, subs: &mut Subscriptions) {
        // Domain-consistent channeling: any removal anywhere matters.
        subs.watch(self.slot, DomainEvent::ANY);
        subs.watch(self.line, DomainEvent::ANY);
        subs.watch(self.page, DomainEvent::ANY);
    }

    fn propagate(&mut self, s: &mut Store, _: &Wake<'_>) -> PropResult {
        // Forward: images of the slot domain.
        let mut lines = Vec::new();
        let mut pages = Vec::new();
        let mut dead_slots = Vec::new();
        for v in s.dom(self.slot).iter() {
            let (ln, pg) = (self.line_of(v), self.page_of(v));
            if s.dom(self.line).contains(ln) && s.dom(self.page).contains(pg) {
                lines.push(ln);
                pages.push(pg);
            } else {
                dead_slots.push(v);
            }
        }
        // Backward: slots whose line/page were already pruned die.
        for v in dead_slots {
            s.remove_value(self.slot, v)?;
        }
        s.intersect(self.line, &Domain::from_values(lines))?;
        s.intersect(self.page, &Domain::from_values(pages))?;
        Ok(())
    }

    fn name(&self) -> &'static str {
        "slot-geometry"
    }

    fn priority(&self) -> Priority {
        Priority::Arith
    }

    fn idempotent(&self) -> bool {
        // After one pass the line/page domains are exactly the images of
        // the surviving slots, so every remaining value has support —
        // provided the three variables are distinct.
        self.slot != self.line && self.slot != self.page && self.line != self.page
    }
}

/// Modular channeling `s = m·k + t` with `t ∈ [0, m)`, domain-consistent
/// over `s` (the modulo-scheduling decomposition: absolute start, stage,
/// window slot). Enumerates the `s` domain, so it is meant for the
/// horizon-sized domains of scheduling models.
pub struct ModChannel {
    pub s: VarId,
    pub k: VarId,
    pub t: VarId,
    pub modulus: i32,
}

impl Propagator for ModChannel {
    fn subscribe(&self, subs: &mut Subscriptions) {
        subs.watch(self.s, DomainEvent::ANY);
        subs.watch(self.k, DomainEvent::ANY);
        subs.watch(self.t, DomainEvent::ANY);
    }

    fn propagate(&mut self, store: &mut Store, _: &Wake<'_>) -> PropResult {
        let m = self.modulus;
        let mut ts = Vec::new();
        let mut ks = Vec::new();
        let mut dead = Vec::new();
        for v in store.dom(self.s).iter() {
            let (k, t) = (v.div_euclid(m), v.rem_euclid(m));
            if store.dom(self.k).contains(k) && store.dom(self.t).contains(t) {
                ks.push(k);
                ts.push(t);
            } else {
                dead.push(v);
            }
        }
        for v in dead {
            store.remove_value(self.s, v)?;
        }
        store.intersect(self.t, &Domain::from_values(ts))?;
        store.intersect(self.k, &Domain::from_values(ks))?;
        Ok(())
    }

    fn name(&self) -> &'static str {
        "mod-channel"
    }

    fn priority(&self) -> Priority {
        Priority::Arith
    }

    fn idempotent(&self) -> bool {
        self.s != self.k && self.s != self.t && self.k != self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;

    /// 16 banks, 4-bank pages, as in the EIT architecture.
    fn setup(n_slots: i32) -> (Store, Engine, VarId, VarId, VarId) {
        let mut s = Store::new();
        let slot = s.new_var(0, n_slots - 1);
        let line = s.new_var(0, 1000);
        let page = s.new_var(0, 1000);
        let mut e = Engine::new();
        e.post(Box::new(SlotGeometry::new(slot, line, page, 16, 4)), &s);
        e.fixpoint(&mut s).unwrap();
        (s, e, slot, line, page)
    }

    #[test]
    fn initial_images_are_tight() {
        let (s, _, _, line, page) = setup(64); // 4 lines × 16 banks
        assert_eq!((s.min(line), s.max(line)), (0, 3));
        assert_eq!((s.min(page), s.max(page)), (0, 3));
    }

    #[test]
    fn fixing_slot_fixes_line_and_page() {
        let (mut s, mut e, slot, line, page) = setup(64);
        s.push_level();
        s.fix(slot, 37).unwrap(); // bank 5, line 2 → page 1
        e.fixpoint(&mut s).unwrap();
        assert_eq!(s.value(line), 2);
        assert_eq!(s.value(page), 1);
    }

    #[test]
    fn fixing_page_prunes_slots() {
        let (mut s, mut e, slot, _, page) = setup(32);
        s.push_level();
        s.fix(page, 2).unwrap(); // banks 8..11
        e.fixpoint(&mut s).unwrap();
        let slots: Vec<i32> = s.dom(slot).iter().collect();
        assert_eq!(slots, vec![8, 9, 10, 11, 24, 25, 26, 27]);
    }

    #[test]
    fn fixing_line_prunes_slots() {
        let (mut s, mut e, slot, line, _) = setup(48);
        s.push_level();
        s.fix(line, 1).unwrap();
        e.fixpoint(&mut s).unwrap();
        assert_eq!(s.min(slot), 16);
        assert_eq!(s.max(slot), 31);
    }

    #[test]
    fn line_and_page_jointly_identify_four_slots() {
        let (mut s, mut e, slot, line, page) = setup(64);
        s.push_level();
        s.fix(line, 3).unwrap();
        s.fix(page, 0).unwrap();
        e.fixpoint(&mut s).unwrap();
        let slots: Vec<i32> = s.dom(slot).iter().collect();
        assert_eq!(slots, vec![48, 49, 50, 51]);
    }

    #[test]
    fn mod_channel_prunes_all_directions() {
        let mut s = Store::new();
        let sv = s.new_var(0, 30);
        let kv = s.new_var(0, 4);
        let tv = s.new_var(0, 6);
        let mut e = Engine::new();
        e.post(
            Box::new(ModChannel {
                s: sv,
                k: kv,
                t: tv,
                modulus: 7,
            }),
            &s,
        );
        e.fixpoint(&mut s).unwrap();
        s.push_level();
        // Restrict the window slot: t ∈ {4,5,6} → s ≡ 4..6 (mod 7).
        s.remove_below(tv, 4).unwrap();
        e.fixpoint(&mut s).unwrap();
        for v in [0, 1, 7, 14, 21] {
            assert!(!s.dom(sv).contains(v), "s should exclude {v}");
        }
        assert!(s.dom(sv).contains(4));
        assert!(s.dom(sv).contains(12));
        // Fix the stage: k = 2 → s ∈ [18, 20].
        s.fix(kv, 2).unwrap();
        e.fixpoint(&mut s).unwrap();
        assert_eq!((s.min(sv), s.max(sv)), (18, 20));
    }

    #[test]
    fn mod_channel_fixing_s_fixes_k_and_t() {
        let mut s = Store::new();
        let sv = s.new_var(0, 100);
        let kv = s.new_var(0, 20);
        let tv = s.new_var(0, 6);
        let mut e = Engine::new();
        e.post(
            Box::new(ModChannel {
                s: sv,
                k: kv,
                t: tv,
                modulus: 7,
            }),
            &s,
        );
        e.fixpoint(&mut s).unwrap();
        s.push_level();
        s.fix(sv, 33).unwrap();
        e.fixpoint(&mut s).unwrap();
        assert_eq!(s.value(kv), 4);
        assert_eq!(s.value(tv), 5);
    }

    #[test]
    fn impossible_combination_fails() {
        let (mut s, mut e, _, line, page) = setup(16); // only line 0 exists
        s.push_level();
        assert!(
            s.fix(line, 1).is_err() || {
                let r = e.fixpoint(&mut s);
                let _ = page;
                r.is_err()
            }
        );
    }
}
