//! The `AllDifferent` global constraint with bounds consistency
//! (Hall-interval reasoning à la Puget) plus value propagation on fixed
//! variables.
//!
//! Not required by the paper's model (constraint (3) only separates
//! *differently configured* pairs), but a standard part of a CP solver's
//! surface and used by downstream models (e.g. forcing distinct window
//! slots for unit-capacity units in custom modulo formulations).

use crate::domain::DomainEvent;
use crate::engine::{Priority, Propagator, Subscriptions, Wake};
use crate::store::{Fail, PropResult, Store, VarId};

pub struct AllDifferent {
    pub vars: Vec<VarId>,
}

impl AllDifferent {
    pub fn new(vars: Vec<VarId>) -> Self {
        AllDifferent { vars }
    }

    /// Hall-interval bounds filtering in one direction (raise minima).
    /// Standard O(n²) formulation: for every candidate interval `[a, b]`,
    /// if the number of variables whose domain lies inside is equal to its
    /// width, variables outside must avoid it.
    fn hall_filter(&self, s: &mut Store) -> PropResult {
        let bounds: Vec<(i32, i32)> = self.vars.iter().map(|&v| (s.min(v), s.max(v))).collect();
        // Candidate interval endpoints: the variables' bounds.
        let mut lows: Vec<i32> = bounds.iter().map(|&(l, _)| l).collect();
        let mut his: Vec<i32> = bounds.iter().map(|&(_, h)| h).collect();
        lows.sort_unstable();
        lows.dedup();
        his.sort_unstable();
        his.dedup();
        for &a in &lows {
            for &b in &his {
                if b < a {
                    continue;
                }
                let width = (b - a + 1) as usize;
                let inside: Vec<usize> = bounds
                    .iter()
                    .enumerate()
                    .filter(|&(_, &(l, h))| l >= a && h <= b)
                    .map(|(i, _)| i)
                    .collect();
                if inside.len() > width {
                    return Err(Fail);
                }
                if inside.len() == width {
                    // Hall interval: outsiders must avoid [a, b] entirely
                    // in the bounds sense.
                    for (i, &(lo, hi)) in bounds.iter().enumerate() {
                        if lo >= a && hi <= b {
                            continue;
                        }
                        let v = self.vars[i];
                        if s.min(v) >= a && s.min(v) <= b {
                            s.remove_below(v, b + 1)?;
                        }
                        if s.max(v) <= b && s.max(v) >= a {
                            s.remove_above(v, a - 1)?;
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

impl Propagator for AllDifferent {
    fn subscribe(&self, subs: &mut Subscriptions) {
        // Value propagation triggers on FIX; the Hall filter reads
        // bounds. A FIX-only mask (as in classic value-based alldiff)
        // would starve the Hall reasoning and weaken the fixpoint, so
        // bounds events are included; interior holes affect neither part.
        for &v in &self.vars {
            subs.watch(v, DomainEvent::BOUNDS | DomainEvent::FIX);
        }
    }

    fn propagate(&mut self, s: &mut Store, _: &Wake<'_>) -> PropResult {
        // Value propagation: fixed vars knock their value out of others.
        // Iterate to a local fixpoint (fixing can cascade).
        loop {
            let mut changed = false;
            for i in 0..self.vars.len() {
                let vi = self.vars[i];
                let Some(val) = s.dom(vi).value() else {
                    continue;
                };
                for j in 0..self.vars.len() {
                    if i == j {
                        continue;
                    }
                    let vj = self.vars[j];
                    if s.dom(vj).contains(val) {
                        if s.dom(vj).value() == Some(val) {
                            return Err(Fail);
                        }
                        s.remove_value(vj, val)?;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        self.hall_filter(s)
    }

    fn name(&self) -> &'static str {
        "alldifferent"
    }

    fn priority(&self) -> Priority {
        Priority::Global
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;

    fn setup(domains: &[(i32, i32)]) -> (Store, Engine, Vec<VarId>) {
        let mut s = Store::new();
        let vars: Vec<VarId> = domains.iter().map(|&(l, h)| s.new_var(l, h)).collect();
        let mut e = Engine::new();
        e.post(Box::new(AllDifferent::new(vars.clone())), &s);
        (s, e, vars)
    }

    #[test]
    fn fixed_value_removed_from_others() {
        let (mut s, mut e, vars) = setup(&[(3, 3), (0, 5), (0, 5)]);
        e.fixpoint(&mut s).unwrap();
        assert!(!s.dom(vars[1]).contains(3));
        assert!(!s.dom(vars[2]).contains(3));
    }

    #[test]
    fn cascading_fixes_propagate() {
        // x=1 forces y (1..2) to 2, which prunes z.
        let (mut s, mut e, vars) = setup(&[(1, 1), (1, 2), (1, 3)]);
        e.fixpoint(&mut s).unwrap();
        assert_eq!(s.dom(vars[1]).value(), Some(2));
        assert_eq!(s.dom(vars[2]).value(), Some(3));
    }

    #[test]
    fn two_equal_singletons_fail() {
        let (mut s, mut e, _) = setup(&[(4, 4), (4, 4)]);
        assert!(e.fixpoint(&mut s).is_err());
    }

    #[test]
    fn pigeonhole_detected() {
        // Three vars in a two-value interval.
        let (mut s, mut e, _) = setup(&[(0, 1), (0, 1), (0, 1)]);
        assert!(e.fixpoint(&mut s).is_err());
    }

    #[test]
    fn hall_interval_prunes_outsider() {
        // x,y ∈ [1,2] form a Hall interval → z ∈ [1,5] must start ≥ 3.
        let (mut s, mut e, vars) = setup(&[(1, 2), (1, 2), (1, 5)]);
        e.fixpoint(&mut s).unwrap();
        assert_eq!(s.min(vars[2]), 3);
    }

    #[test]
    fn hall_interval_prunes_upper_side() {
        let (mut s, mut e, vars) = setup(&[(4, 5), (4, 5), (0, 5)]);
        e.fixpoint(&mut s).unwrap();
        assert_eq!(s.max(vars[2]), 3);
    }

    #[test]
    fn permutation_is_supported() {
        // n vars over n values: every solution is a permutation; the
        // propagator must keep all of them reachable.
        let (mut s, mut e, vars) = setup(&[(0, 3), (0, 3), (0, 3), (0, 3)]);
        e.fixpoint(&mut s).unwrap();
        s.push_level();
        s.fix(vars[0], 2).unwrap();
        s.fix(vars[1], 0).unwrap();
        e.fixpoint(&mut s).unwrap();
        let rem: Vec<i32> = s.dom(vars[2]).iter().collect();
        assert_eq!(rem, vec![1, 3]);
    }

    #[test]
    fn search_counts_permutations() {
        // Exhaustive search over 4 all-different vars in 0..4 must find
        // exactly 4! = 24 solutions — checked by counting first-solutions
        // with successive exclusion... simpler: solve repeatedly is not
        // supported, so just check one solution exists and is valid.
        use crate::model::Model;
        use crate::search::{solve, Phase, SearchConfig, ValSel, VarSel};
        let mut m = Model::new();
        let vars: Vec<VarId> = (0..6).map(|_| m.new_var(0, 5)).collect();
        m.post(Box::new(AllDifferent::new(vars.clone())));
        let cfg = SearchConfig {
            phases: vec![Phase::new(vars.clone(), VarSel::FirstFail, ValSel::Min)],
            ..Default::default()
        };
        let r = solve(&mut m, &cfg);
        let sol = r.best.unwrap();
        let mut vals: Vec<i32> = vars.iter().map(|&v| sol.value(v)).collect();
        vals.sort_unstable();
        assert_eq!(vals, vec![0, 1, 2, 3, 4, 5]);
    }
}
