//! Linear (in)equality constraints with bounds consistency.
//!
//! `LinearLeq` enforces `Σ aᵢ·xᵢ ≤ c`; `LinearEq` enforces `Σ aᵢ·xᵢ = c`
//! (as the conjunction of the two inequalities, which is bounds-complete
//! for linear equations). Coefficients may be negative. All arithmetic is
//! done in `i64` so that model-sized coefficients cannot overflow.

use crate::engine::Propagator;
use crate::store::{Fail, PropResult, Store, VarId};

/// `Σ aᵢ·xᵢ ≤ c`.
pub struct LinearLeq {
    pub terms: Vec<(i64, VarId)>,
    pub c: i64,
}

impl LinearLeq {
    pub fn new(terms: Vec<(i64, VarId)>, c: i64) -> Self {
        LinearLeq { terms, c }
    }
}

#[inline]
fn term_min(s: &Store, a: i64, x: VarId) -> i64 {
    if a >= 0 {
        a * s.min(x) as i64
    } else {
        a * s.max(x) as i64
    }
}

#[inline]
fn term_max(s: &Store, a: i64, x: VarId) -> i64 {
    if a >= 0 {
        a * s.max(x) as i64
    } else {
        a * s.min(x) as i64
    }
}

fn prune_leq(s: &mut Store, terms: &[(i64, VarId)], c: i64) -> PropResult {
    // Sum of minimal contributions; if it already exceeds c, fail.
    let min_sum: i64 = terms.iter().map(|&(a, x)| term_min(s, a, x)).sum();
    if min_sum > c {
        return Err(Fail);
    }
    // Each term may use at most c - (min_sum - its own min contribution).
    for &(a, x) in terms {
        if a == 0 {
            continue;
        }
        let slack = c - (min_sum - term_min(s, a, x));
        if a > 0 {
            // a*x ≤ slack  →  x ≤ floor(slack / a)
            let ub = slack.div_euclid(a);
            s.remove_above(x, ub.clamp(i32::MIN as i64, i32::MAX as i64) as i32)?;
        } else {
            // a*x ≤ slack with a < 0  →  x ≥ ceil(slack / a)
            let lb = ceil_div(slack, a);
            s.remove_below(x, lb.clamp(i32::MIN as i64, i32::MAX as i64) as i32)?;
        }
    }
    Ok(())
}

/// Ceiling division that is correct for all sign combinations.
#[inline]
fn ceil_div(n: i64, d: i64) -> i64 {
    let q = n / d;
    let r = n % d;
    if r != 0 && (r < 0) == (d < 0) {
        q + 1
    } else {
        q
    }
}

impl Propagator for LinearLeq {
    fn vars(&self) -> Vec<VarId> {
        self.terms.iter().map(|&(_, x)| x).collect()
    }

    fn propagate(&mut self, s: &mut Store) -> PropResult {
        prune_leq(s, &self.terms, self.c)
    }

    fn name(&self) -> &'static str {
        "linear<="
    }
}

/// `Σ aᵢ·xᵢ = c`.
pub struct LinearEq {
    pub terms: Vec<(i64, VarId)>,
    pub c: i64,
}

impl LinearEq {
    pub fn new(terms: Vec<(i64, VarId)>, c: i64) -> Self {
        LinearEq { terms, c }
    }
}

impl Propagator for LinearEq {
    fn vars(&self) -> Vec<VarId> {
        self.terms.iter().map(|&(_, x)| x).collect()
    }

    fn propagate(&mut self, s: &mut Store) -> PropResult {
        // ≤ direction.
        prune_leq(s, &self.terms, self.c)?;
        // ≥ direction: negate.
        let neg: Vec<(i64, VarId)> = self.terms.iter().map(|&(a, x)| (-a, x)).collect();
        prune_leq(s, &neg, -self.c)?;
        // Max-sum feasibility check.
        let max_sum: i64 = self.terms.iter().map(|&(a, x)| term_max(s, a, x)).sum();
        if max_sum < self.c {
            return Err(Fail);
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "linear="
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;

    #[test]
    fn ceil_div_signs() {
        assert_eq!(ceil_div(7, 2), 4);
        assert_eq!(ceil_div(6, 2), 3);
        assert_eq!(ceil_div(-7, 2), -3);
        assert_eq!(ceil_div(7, -2), -3);
        assert_eq!(ceil_div(-7, -2), 4);
        assert_eq!(ceil_div(0, 5), 0);
    }

    #[test]
    fn leq_prunes_upper_bounds() {
        let mut s = Store::new();
        let x = s.new_var(0, 10);
        let y = s.new_var(0, 10);
        let mut e = Engine::new();
        // x + 2y ≤ 10
        e.post(Box::new(LinearLeq::new(vec![(1, x), (2, y)], 10)), &s);
        e.fixpoint(&mut s).unwrap();
        assert_eq!(s.max(y), 5);
        assert_eq!(s.max(x), 10);
        s.push_level();
        s.remove_below(y, 4).unwrap();
        e.fixpoint(&mut s).unwrap();
        assert_eq!(s.max(x), 2);
    }

    #[test]
    fn leq_with_negative_coeff() {
        let mut s = Store::new();
        let x = s.new_var(0, 10);
        let y = s.new_var(0, 10);
        let mut e = Engine::new();
        // x - y ≤ 2  →  x ≤ y + 2
        e.post(Box::new(LinearLeq::new(vec![(1, x), (-1, y)], 2)), &s);
        e.fixpoint(&mut s).unwrap();
        s.push_level();
        s.remove_above(y, 3).unwrap();
        e.fixpoint(&mut s).unwrap();
        assert_eq!(s.max(x), 5);
        s.pop_level();
        s.push_level();
        s.remove_below(x, 9).unwrap();
        e.fixpoint(&mut s).unwrap();
        assert_eq!(s.min(y), 7);
    }

    #[test]
    fn leq_fails_on_overcommit() {
        let mut s = Store::new();
        let x = s.new_var(6, 10);
        let y = s.new_var(6, 10);
        let mut e = Engine::new();
        e.post(Box::new(LinearLeq::new(vec![(1, x), (1, y)], 10)), &s);
        assert!(e.fixpoint(&mut s).is_err());
    }

    #[test]
    fn eq_fixes_last_var() {
        let mut s = Store::new();
        let x = s.new_var(0, 10);
        let y = s.new_var(0, 10);
        let mut e = Engine::new();
        // x + y = 10
        e.post(Box::new(LinearEq::new(vec![(1, x), (1, y)], 10)), &s);
        e.fixpoint(&mut s).unwrap();
        s.push_level();
        s.fix(x, 3).unwrap();
        e.fixpoint(&mut s).unwrap();
        assert_eq!(s.value(y), 7);
    }

    #[test]
    fn eq_detects_unreachable_sum() {
        let mut s = Store::new();
        let x = s.new_var(0, 3);
        let y = s.new_var(0, 3);
        let mut e = Engine::new();
        e.post(Box::new(LinearEq::new(vec![(1, x), (1, y)], 9)), &s);
        assert!(e.fixpoint(&mut s).is_err());
    }

    #[test]
    fn eq_with_mixed_coeffs() {
        let mut s = Store::new();
        let x = s.new_var(0, 20);
        let y = s.new_var(0, 20);
        let mut e = Engine::new();
        // 2x - 3y = 1
        e.post(Box::new(LinearEq::new(vec![(2, x), (-3, y)], 1)), &s);
        e.fixpoint(&mut s).unwrap();
        s.push_level();
        s.fix(y, 3).unwrap();
        e.fixpoint(&mut s).unwrap();
        assert_eq!(s.value(x), 5);
    }
}
