//! Linear (in)equality constraints with bounds consistency.
//!
//! `LinearLeq` enforces `Σ aᵢ·xᵢ ≤ c`; `LinearEq` enforces `Σ aᵢ·xᵢ = c`
//! (as the conjunction of the two inequalities, which is bounds-complete
//! for linear equations). Coefficients may be negative. All arithmetic is
//! done in `i64` so that model-sized coefficients cannot overflow.

use crate::domain::DomainEvent;
use crate::engine::{Priority, Propagator, Subscriptions, Wake};
use crate::store::{Fail, PropResult, Store, VarId};

/// `Σ aᵢ·xᵢ ≤ c`.
///
/// Keeps the per-term minimal contributions cached between re-runs
/// inside one fixpoint round: a wake with term tags updates only the
/// dirty terms' entries in O(|dirty|) instead of recomputing the whole
/// minimal sum.
pub struct LinearLeq {
    pub terms: Vec<(i64, VarId)>,
    pub c: i64,
    /// Cached `term_min` per term, valid only on same-round re-runs.
    mins: Vec<i64>,
    /// Cached Σ mins, kept in sync with `mins`.
    min_sum: i64,
}

impl LinearLeq {
    pub fn new(terms: Vec<(i64, VarId)>, c: i64) -> Self {
        LinearLeq {
            terms,
            c,
            mins: Vec::new(),
            min_sum: 0,
        }
    }

    /// Bring `mins`/`min_sum` up to date: full rescan when the cache
    /// cannot be trusted, otherwise patch only the tagged terms.
    fn refresh_mins(&mut self, s: &Store, wake: &Wake<'_>) {
        if wake.rescan() || !wake.rerun_in_round() || self.mins.len() != self.terms.len() {
            self.mins.clear();
            self.mins
                .extend(self.terms.iter().map(|&(a, x)| term_min(s, a, x)));
            self.min_sum = self.mins.iter().sum();
        } else {
            for &t in wake.tags() {
                let (a, x) = self.terms[t as usize];
                let m = term_min(s, a, x);
                self.min_sum += m - self.mins[t as usize];
                self.mins[t as usize] = m;
            }
        }
    }
}

#[inline]
fn term_min(s: &Store, a: i64, x: VarId) -> i64 {
    if a >= 0 {
        a * s.min(x) as i64
    } else {
        a * s.max(x) as i64
    }
}

#[inline]
fn term_max(s: &Store, a: i64, x: VarId) -> i64 {
    if a >= 0 {
        a * s.max(x) as i64
    } else {
        a * s.min(x) as i64
    }
}

fn prune_leq(s: &mut Store, terms: &[(i64, VarId)], c: i64) -> PropResult {
    // Sum of minimal contributions; if it already exceeds c, fail.
    let min_sum: i64 = terms.iter().map(|&(a, x)| term_min(s, a, x)).sum();
    if min_sum > c {
        return Err(Fail);
    }
    // Each term may use at most c - (min_sum - its own min contribution).
    for &(a, x) in terms {
        if a == 0 {
            continue;
        }
        let slack = c - (min_sum - term_min(s, a, x));
        if a > 0 {
            // a*x ≤ slack  →  x ≤ floor(slack / a)
            let ub = slack.div_euclid(a);
            s.remove_above(x, ub.clamp(i32::MIN as i64, i32::MAX as i64) as i32)?;
        } else {
            // a*x ≤ slack with a < 0  →  x ≥ ceil(slack / a)
            let lb = ceil_div(slack, a);
            s.remove_below(x, lb.clamp(i32::MIN as i64, i32::MAX as i64) as i32)?;
        }
    }
    Ok(())
}

/// Ceiling division that is correct for all sign combinations.
#[inline]
fn ceil_div(n: i64, d: i64) -> i64 {
    let q = n / d;
    let r = n % d;
    if r != 0 && (r < 0) == (d < 0) {
        q + 1
    } else {
        q
    }
}

impl Propagator for LinearLeq {
    fn subscribe(&self, subs: &mut Subscriptions) {
        // Only the *minimal* contribution of a term feeds the rules: a
        // positive term grows its minimum on MIN events, a negative one
        // on MAX events. The pruned (opposite) side never re-triggers.
        for (i, &(a, x)) in self.terms.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let mask = if a > 0 {
                DomainEvent::MIN
            } else {
                DomainEvent::MAX
            };
            subs.watch_tagged(x, mask, i as u32);
        }
    }

    fn propagate(&mut self, s: &mut Store, wake: &Wake<'_>) -> PropResult {
        self.refresh_mins(s, wake);
        if self.min_sum > self.c {
            return Err(Fail);
        }
        // Each term may use at most c - (min_sum - its own min contribution).
        for (i, &(a, x)) in self.terms.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let slack = self.c - (self.min_sum - self.mins[i]);
            if a > 0 {
                // a*x ≤ slack  →  x ≤ floor(slack / a)
                let ub = slack.div_euclid(a);
                s.remove_above(x, ub.clamp(i32::MIN as i64, i32::MAX as i64) as i32)?;
            } else {
                // a*x ≤ slack with a < 0  →  x ≥ ceil(slack / a)
                let lb = ceil_div(slack, a);
                s.remove_below(x, lb.clamp(i32::MIN as i64, i32::MAX as i64) as i32)?;
            }
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "linear<="
    }

    fn priority(&self) -> Priority {
        Priority::Linear
    }

    fn idempotent(&self) -> bool {
        // A run prunes only the non-minimal side of each term, so the
        // minimal sum it reasons from is unchanged by its own prunings —
        // unless some variable appears with both signs, in which case a
        // max-prune through the positive term feeds the negative term's
        // minimum (and vice versa) and a re-run can prune more.
        let mut pos: Vec<VarId> = Vec::new();
        let mut neg: Vec<VarId> = Vec::new();
        for &(a, x) in &self.terms {
            match a.cmp(&0) {
                std::cmp::Ordering::Greater => pos.push(x),
                std::cmp::Ordering::Less => neg.push(x),
                std::cmp::Ordering::Equal => {}
            }
        }
        !pos.iter().any(|x| neg.contains(x))
    }
}

/// `Σ aᵢ·xᵢ = c`.
pub struct LinearEq {
    pub terms: Vec<(i64, VarId)>,
    pub c: i64,
}

impl LinearEq {
    pub fn new(terms: Vec<(i64, VarId)>, c: i64) -> Self {
        LinearEq { terms, c }
    }
}

impl Propagator for LinearEq {
    fn subscribe(&self, subs: &mut Subscriptions) {
        // Both directions of the equality consume both bounds; holes
        // never matter for bounds consistency.
        for &(a, x) in &self.terms {
            if a != 0 {
                subs.watch(x, DomainEvent::BOUNDS);
            }
        }
    }

    fn propagate(&mut self, s: &mut Store, _: &Wake<'_>) -> PropResult {
        // ≤ direction.
        prune_leq(s, &self.terms, self.c)?;
        // ≥ direction: negate.
        let neg: Vec<(i64, VarId)> = self.terms.iter().map(|&(a, x)| (-a, x)).collect();
        prune_leq(s, &neg, -self.c)?;
        // Max-sum feasibility check.
        let max_sum: i64 = self.terms.iter().map(|&(a, x)| term_max(s, a, x)).sum();
        if max_sum < self.c {
            return Err(Fail);
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "linear="
    }

    fn priority(&self) -> Priority {
        Priority::Linear
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;

    #[test]
    fn ceil_div_signs() {
        assert_eq!(ceil_div(7, 2), 4);
        assert_eq!(ceil_div(6, 2), 3);
        assert_eq!(ceil_div(-7, 2), -3);
        assert_eq!(ceil_div(7, -2), -3);
        assert_eq!(ceil_div(-7, -2), 4);
        assert_eq!(ceil_div(0, 5), 0);
    }

    #[test]
    fn leq_prunes_upper_bounds() {
        let mut s = Store::new();
        let x = s.new_var(0, 10);
        let y = s.new_var(0, 10);
        let mut e = Engine::new();
        // x + 2y ≤ 10
        e.post(Box::new(LinearLeq::new(vec![(1, x), (2, y)], 10)), &s);
        e.fixpoint(&mut s).unwrap();
        assert_eq!(s.max(y), 5);
        assert_eq!(s.max(x), 10);
        s.push_level();
        s.remove_below(y, 4).unwrap();
        e.fixpoint(&mut s).unwrap();
        assert_eq!(s.max(x), 2);
    }

    #[test]
    fn leq_with_negative_coeff() {
        let mut s = Store::new();
        let x = s.new_var(0, 10);
        let y = s.new_var(0, 10);
        let mut e = Engine::new();
        // x - y ≤ 2  →  x ≤ y + 2
        e.post(Box::new(LinearLeq::new(vec![(1, x), (-1, y)], 2)), &s);
        e.fixpoint(&mut s).unwrap();
        s.push_level();
        s.remove_above(y, 3).unwrap();
        e.fixpoint(&mut s).unwrap();
        assert_eq!(s.max(x), 5);
        s.pop_level();
        s.push_level();
        s.remove_below(x, 9).unwrap();
        e.fixpoint(&mut s).unwrap();
        assert_eq!(s.min(y), 7);
    }

    #[test]
    fn leq_fails_on_overcommit() {
        let mut s = Store::new();
        let x = s.new_var(6, 10);
        let y = s.new_var(6, 10);
        let mut e = Engine::new();
        e.post(Box::new(LinearLeq::new(vec![(1, x), (1, y)], 10)), &s);
        assert!(e.fixpoint(&mut s).is_err());
    }

    #[test]
    fn eq_fixes_last_var() {
        let mut s = Store::new();
        let x = s.new_var(0, 10);
        let y = s.new_var(0, 10);
        let mut e = Engine::new();
        // x + y = 10
        e.post(Box::new(LinearEq::new(vec![(1, x), (1, y)], 10)), &s);
        e.fixpoint(&mut s).unwrap();
        s.push_level();
        s.fix(x, 3).unwrap();
        e.fixpoint(&mut s).unwrap();
        assert_eq!(s.value(y), 7);
    }

    #[test]
    fn eq_detects_unreachable_sum() {
        let mut s = Store::new();
        let x = s.new_var(0, 3);
        let y = s.new_var(0, 3);
        let mut e = Engine::new();
        e.post(Box::new(LinearEq::new(vec![(1, x), (1, y)], 9)), &s);
        assert!(e.fixpoint(&mut s).is_err());
    }

    #[test]
    fn eq_with_mixed_coeffs() {
        let mut s = Store::new();
        let x = s.new_var(0, 20);
        let y = s.new_var(0, 20);
        let mut e = Engine::new();
        // 2x - 3y = 1
        e.post(Box::new(LinearEq::new(vec![(2, x), (-3, y)], 1)), &s);
        e.fixpoint(&mut s).unwrap();
        s.push_level();
        s.fix(y, 3).unwrap();
        e.fixpoint(&mut s).unwrap();
        assert_eq!(s.value(x), 5);
    }
}
