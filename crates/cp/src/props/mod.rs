//! Propagator implementations.
//!
//! Each submodule provides one family of constraints used by the scheduling
//! and memory-allocation model:
//!
//! - [`alldiff`] — the `AllDifferent` global constraint
//! - [`basic`] — equalities, offsets, disequalities, `max`
//! - [`linear`] — linear (in)equalities with bounds consistency
//! - [`nogood`] — watched-literal enforcement of restart-harvested nogoods
//! - [`cumulative`] — renewable-resource scheduling (time-table filtering)
//! - [`diff2`] — two-dimensional non-overlap of rectangles
//! - [`disjunctive`] — unary-resource scheduling with overload checking
//! - [`geometry`] — the slot/line/page channeling of the EIT vector memory
//! - [`reify`] — guarded/conditional constraints (the paper's (7)–(9))
//! - [`table`] — extensional constraint with generalised arc consistency
//!
//! Every propagator declares its wake-up conditions to the event engine
//! via [`Propagator::subscribe`](crate::engine::Propagator::subscribe)
//! (per-variable [`DomainEvent`](crate::domain::DomainEvent) masks,
//! optionally tagged so the propagator can tell *which* of its parts
//! changed), a scheduling tier
//! ([`Priority`](crate::engine::Priority): cheap arithmetic before
//! linear before globals) and an idempotence hint. The hint must be a
//! dynamic check when the constraint can be posted with aliased
//! variables — a repeated variable makes a propagator interact with
//! itself through the shared domain, so one pass is no longer a
//! fixpoint. DESIGN.md §5e tabulates the assignment per propagator.

pub mod alldiff;
pub mod basic;
pub mod cumulative;
pub mod diff2;
pub mod disjunctive;
pub mod geometry;
pub mod linear;
pub mod nogood;
pub mod reify;
pub mod table;
