//! Propagator implementations.
//!
//! Each submodule provides one family of constraints used by the scheduling
//! and memory-allocation model:
//!
//! - [`alldiff`] — the `AllDifferent` global constraint
//! - [`basic`] — equalities, offsets, disequalities, `max`
//! - [`linear`] — linear (in)equalities with bounds consistency
//! - [`cumulative`] — renewable-resource scheduling (time-table filtering)
//! - [`diff2`] — two-dimensional non-overlap of rectangles
//! - [`disjunctive`] — unary-resource scheduling with overload checking
//! - [`geometry`] — the slot/line/page channeling of the EIT vector memory
//! - [`reify`] — guarded/conditional constraints (the paper's (7)–(9))
//! - [`table`] — extensional constraint with generalised arc consistency

pub mod alldiff;
pub mod basic;
pub mod cumulative;
pub mod diff2;
pub mod disjunctive;
pub mod geometry;
pub mod linear;
pub mod reify;
pub mod table;
