//! Nogood store with watched-literal propagation.
//!
//! A *nogood* is a forbidden conjunction of decisions
//! `¬(x₁=v₁ ∧ … ∧ xₖ=vₖ)`, harvested by the restart driver from the
//! refuted decision prefixes of an abandoned dive (Lecoutre-style
//! nld-nogoods). Viewed as a clause it is `(x₁≠v₁) ∨ … ∨ (xₖ≠vₖ)`:
//! a literal `xᵢ≠vᵢ` is *false* when `xᵢ` is fixed to `vᵢ`, *true* when
//! `vᵢ` has left `dom(xᵢ)`, and undecided otherwise.
//!
//! [`NogoodProp`] enforces every clause with the SAT two-watched-literal
//! scheme, adapted to a backtracking CP engine:
//!
//! - Each clause watches two non-false literals. A literal can only
//!   become false through a `FIX` of its variable, so the propagator
//!   subscribes `FIX`-tagged on every decision variable and inspects
//!   only the clauses watching a fired variable.
//! - Watch lists are **not trailed**. Moving a watch is backtrack-safe:
//!   watches only ever move *onto* non-false literals, and backtracking
//!   can only un-fix variables — it never falsifies a literal — so the
//!   "two non-false watches" invariant survives any number of pops.
//! - When no replacement watch exists the clause is unit (prune the
//!   remaining literal's value) or conflicting (`Err(Fail)`).
//!
//! The clause set lives in a shared [`NogoodBase`]: the search driver
//! appends harvested clauses at each restart (at the root, where the
//! engine re-runs its fixpoint), and the propagator lazily initializes
//! the new suffix on its next run. Length-1 nogoods prune at the root
//! and are therefore permanent for the remainder of the run.

use crate::domain::DomainEvent;
use crate::engine::{Priority, Propagator, Subscriptions, Wake};
use crate::store::{Fail, PropResult, Store, VarId};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// One clause: literals as `(position-in-vars, forbidden value)` plus the
/// two watched literal indices (equal for a unit clause).
struct Clause {
    lits: Vec<(u32, i32)>,
    w: [u32; 2],
}

/// Shared clause store: the driver appends, [`NogoodProp`] enforces.
pub struct NogoodBase {
    /// The decision variables the propagator watches (deduplicated).
    vars: Vec<VarId>,
    /// VarId.0 → position in `vars`.
    pos_of: HashMap<u32, u32>,
    clauses: Vec<Clause>,
    /// Per variable position, the clauses currently watching it.
    watch_lists: Vec<Vec<u32>>,
    /// Clauses below this index have their watches installed.
    n_initialized: usize,
    /// Clauses ever added (monotone; survives [`NogoodBase::clear`]).
    pub posted: u64,
    /// Values pruned by unit propagation (monotone).
    pub pruned: u64,
    /// Conflicts (all literals false) detected (monotone).
    pub conflicts: u64,
}

impl NogoodBase {
    pub fn new(vars: Vec<VarId>) -> Self {
        let pos_of = vars
            .iter()
            .enumerate()
            .map(|(i, v)| (v.0, i as u32))
            .collect();
        let watch_lists = vec![Vec::new(); vars.len()];
        NogoodBase {
            vars,
            pos_of,
            clauses: Vec::new(),
            watch_lists,
            n_initialized: 0,
            posted: 0,
            pruned: 0,
            conflicts: 0,
        }
    }

    /// Append a harvested nogood. Literals over unknown variables drop
    /// the whole clause (harvests only contain decision variables, so
    /// this is a defensive no-op in practice).
    pub fn add_clause(&mut self, lits: Vec<(VarId, i32)>) {
        let mut mapped = Vec::with_capacity(lits.len());
        for (v, val) in lits {
            let Some(&p) = self.pos_of.get(&v.0) else {
                debug_assert!(false, "nogood literal over unwatched {v:?}");
                return;
            };
            mapped.push((p, val));
        }
        if mapped.is_empty() {
            return;
        }
        self.posted += 1;
        self.clauses.push(Clause {
            lits: mapped,
            w: [0, 0],
        });
    }

    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Drop every clause. Called by the search driver at the end of a
    /// run: recorded nogoods are only valid under that run's
    /// monotonically tightening objective bound, so a model reused for a
    /// later search must start from an empty base (the still-posted
    /// propagator then no-ops).
    pub fn clear(&mut self) {
        self.clauses.clear();
        for wl in &mut self.watch_lists {
            wl.clear();
        }
        self.n_initialized = 0;
    }

    /// Literal state: false ⇔ var fixed to the literal's value.
    #[inline]
    fn lit_false(&self, store: &Store, lit: (u32, i32)) -> bool {
        store.dom(self.vars[lit.0 as usize]).value() == Some(lit.1)
    }

    /// Literal state: true ⇔ the value has left the domain.
    #[inline]
    fn lit_true(&self, store: &Store, lit: (u32, i32)) -> bool {
        !store.dom(self.vars[lit.0 as usize]).contains(lit.1)
    }

    /// Install watches for clauses appended since the last run and give
    /// each an initial check (a clause can arrive already unit — or even
    /// conflicting — under the root domains of a later restart).
    fn init_new(&mut self, store: &mut Store) -> PropResult {
        while self.n_initialized < self.clauses.len() {
            let ci = self.n_initialized as u32;
            self.n_initialized += 1;
            // Pick up to two non-false literals to watch.
            let c = &self.clauses[ci as usize];
            let mut picks = [0u32; 2];
            let mut n = 0;
            for (li, &lit) in c.lits.iter().enumerate() {
                if !self.lit_false(store, lit) {
                    picks[n] = li as u32;
                    n += 1;
                    if n == 2 {
                        break;
                    }
                }
            }
            match n {
                0 => {
                    // Every literal false under the current domains.
                    self.conflicts += 1;
                    return Err(Fail);
                }
                1 => {
                    let lit = c.lits[picks[0] as usize];
                    self.clauses[ci as usize].w = [picks[0], picks[0]];
                    self.watch_lists[lit.0 as usize].push(ci);
                    self.enforce_unit(store, lit)?;
                }
                _ => {
                    self.clauses[ci as usize].w = picks;
                    let c = &self.clauses[ci as usize];
                    for wi in [0, 1] {
                        let p = c.lits[c.w[wi] as usize].0 as usize;
                        self.watch_lists[p].push(ci);
                    }
                }
            }
        }
        Ok(())
    }

    /// All other literals false: force this one true.
    fn enforce_unit(&mut self, store: &mut Store, lit: (u32, i32)) -> PropResult {
        if self.lit_true(store, lit) {
            return Ok(()); // already satisfied
        }
        let var = self.vars[lit.0 as usize];
        if store.dom(var).value() == Some(lit.1) {
            self.conflicts += 1;
            return Err(Fail);
        }
        self.pruned += 1;
        store.remove_value(var, lit.1).inspect_err(|_| {
            self.conflicts += 1;
        })
    }

    /// Re-examine one clause whose watched variable `p` fired. Moves
    /// watches / propagates / fails as the watched-literal scheme
    /// dictates. Returns `false` if the clause stopped watching `p`.
    fn visit(&mut self, store: &mut Store, ci: u32, p: u32) -> Result<bool, Fail> {
        let c = &self.clauses[ci as usize];
        // Which watch sits on the fired variable? (Unit clauses have both
        // on the same literal; handle them via the w[0] path.)
        let wi = if c.lits[c.w[0] as usize].0 == p {
            0
        } else if c.lits[c.w[1] as usize].0 == p {
            1
        } else {
            // Stale entry cannot happen: moves eagerly edit both lists.
            debug_assert!(false, "watch list out of sync");
            return Ok(false);
        };
        let watched = c.lits[c.w[wi] as usize];
        if !self.lit_false(store, watched) {
            return Ok(true); // spurious wake (fixed to some other value)
        }
        if c.w[0] == c.w[1] {
            // Unit clause: its only literal just went false.
            self.conflicts += 1;
            return Err(Fail);
        }
        let other = c.lits[c.w[1 - wi] as usize];
        // Look for a replacement non-false literal that is not the other
        // watch.
        let replacement = c.lits.iter().enumerate().find(|&(li, &lit)| {
            li as u32 != c.w[0] && li as u32 != c.w[1] && !self.lit_false(store, lit)
        });
        if let Some((li, &lit)) = replacement {
            let li = li as u32;
            self.clauses[ci as usize].w[wi] = li;
            let wl = &mut self.watch_lists[p as usize];
            let at = wl.iter().position(|&x| x == ci).expect("watching clause");
            wl.swap_remove(at);
            self.watch_lists[lit.0 as usize].push(ci);
            return Ok(false);
        }
        // No replacement: the clause is unit on `other` (or conflicting,
        // which enforce_unit detects).
        self.enforce_unit(store, other)?;
        Ok(true)
    }

    /// Process every clause watching variable position `p`.
    fn on_fix(&mut self, store: &mut Store, p: u32) -> PropResult {
        let mut i = 0;
        while i < self.watch_lists[p as usize].len() {
            let ci = self.watch_lists[p as usize][i];
            if self.visit(store, ci, p)? {
                i += 1; // clause kept its watch here
            }
            // else: swap_removed — same index now holds the next clause
        }
        Ok(())
    }
}

/// The engine-facing propagator: a thin lock around the shared base.
pub struct NogoodProp {
    base: Arc<Mutex<NogoodBase>>,
}

impl NogoodProp {
    pub fn new(base: Arc<Mutex<NogoodBase>>) -> Self {
        NogoodProp { base }
    }
}

impl Propagator for NogoodProp {
    fn subscribe(&self, subs: &mut Subscriptions) {
        let base = self.base.lock().unwrap();
        for (i, &v) in base.vars.iter().enumerate() {
            subs.watch_tagged(v, DomainEvent::FIX, i as u32);
        }
    }

    fn propagate(&mut self, store: &mut Store, wake: &Wake<'_>) -> PropResult {
        let mut base = self.base.lock().unwrap();
        base.init_new(store)?;
        if wake.rescan() {
            for p in 0..base.watch_lists.len() as u32 {
                base.on_fix(store, p)?;
            }
        } else {
            for &p in wake.tags() {
                base.on_fix(store, p)?;
            }
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "nogoods"
    }

    fn priority(&self) -> Priority {
        Priority::Arith
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;

    fn vars(m: &mut Model, n: usize, hi: i32) -> Vec<VarId> {
        (0..n).map(|_| m.new_var(0, hi)).collect()
    }

    fn base_with(m: &mut Model, xs: &[VarId]) -> Arc<Mutex<NogoodBase>> {
        let base = Arc::new(Mutex::new(NogoodBase::new(xs.to_vec())));
        m.post(Box::new(NogoodProp::new(base.clone())));
        base
    }

    #[test]
    fn unit_nogood_prunes_at_root() {
        let mut m = Model::new();
        let xs = vars(&mut m, 2, 5);
        let base = base_with(&mut m, &xs);
        base.lock().unwrap().add_clause(vec![(xs[0], 3)]);
        m.engine.schedule_all();
        m.engine.fixpoint(&mut m.store).unwrap();
        assert!(!m.store.dom(xs[0]).contains(3));
        assert_eq!(base.lock().unwrap().pruned, 1);
    }

    #[test]
    fn binary_nogood_propagates_when_one_literal_falsifies() {
        let mut m = Model::new();
        let xs = vars(&mut m, 2, 5);
        let base = base_with(&mut m, &xs);
        base.lock()
            .unwrap()
            .add_clause(vec![(xs[0], 2), (xs[1], 4)]);
        m.engine.schedule_all();
        m.engine.fixpoint(&mut m.store).unwrap();
        m.store.push_level();
        m.store.fix(xs[0], 2).unwrap();
        m.engine.fixpoint(&mut m.store).unwrap();
        assert!(!m.store.dom(xs[1]).contains(4), "unit-propagated x1 != 4");
        // Backtracking restores both the fix and the pruning.
        m.store.pop_level();
        assert!(m.store.dom(xs[1]).contains(4));
        // The nogood still fires on a later re-fix (watches survived).
        m.store.push_level();
        m.store.fix(xs[0], 2).unwrap();
        m.engine.fixpoint(&mut m.store).unwrap();
        assert!(!m.store.dom(xs[1]).contains(4));
        m.store.pop_level();
    }

    #[test]
    fn conflicting_assignment_fails() {
        let mut m = Model::new();
        let xs = vars(&mut m, 2, 5);
        let base = base_with(&mut m, &xs);
        base.lock()
            .unwrap()
            .add_clause(vec![(xs[0], 1), (xs[1], 1)]);
        m.engine.schedule_all();
        m.engine.fixpoint(&mut m.store).unwrap();
        m.store.push_level();
        // Falsify both literals before the propagator gets a chance to make
        // the clause unit: the fixpoint must then report the conflict.
        m.store.fix(xs[0], 1).unwrap();
        m.store.fix(xs[1], 1).unwrap();
        assert!(m.engine.fixpoint(&mut m.store).is_err());
        assert!(base.lock().unwrap().conflicts >= 1);
        m.store.pop_level();
    }

    #[test]
    fn watches_move_through_long_clauses() {
        let mut m = Model::new();
        let xs = vars(&mut m, 4, 9);
        let base = base_with(&mut m, &xs);
        base.lock()
            .unwrap()
            .add_clause(vec![(xs[0], 0), (xs[1], 1), (xs[2], 2), (xs[3], 3)]);
        m.engine.schedule_all();
        m.engine.fixpoint(&mut m.store).unwrap();
        m.store.push_level();
        // Falsify three of four literals in arbitrary order.
        for (v, val) in [(xs[2], 2), (xs[0], 0), (xs[3], 3)] {
            m.store.fix(v, val).unwrap();
            m.engine.fixpoint(&mut m.store).unwrap();
        }
        assert!(!m.store.dom(xs[1]).contains(1), "last literal forced true");
        m.store.pop_level();
    }

    #[test]
    fn satisfied_clause_never_fires() {
        let mut m = Model::new();
        let xs = vars(&mut m, 2, 5);
        let base = base_with(&mut m, &xs);
        base.lock()
            .unwrap()
            .add_clause(vec![(xs[0], 2), (xs[1], 4)]);
        m.engine.schedule_all();
        m.engine.fixpoint(&mut m.store).unwrap();
        m.store.push_level();
        // Make the second literal true first, then falsify the first.
        m.store.remove_value(xs[1], 4).unwrap();
        m.engine.fixpoint(&mut m.store).unwrap();
        m.store.fix(xs[0], 2).unwrap();
        m.engine.fixpoint(&mut m.store).unwrap();
        assert_eq!(m.store.dom(xs[0]).value(), Some(2)); // no interference
        m.store.pop_level();
    }

    #[test]
    fn clauses_added_between_fixpoints_are_picked_up() {
        let mut m = Model::new();
        let xs = vars(&mut m, 2, 5);
        let base = base_with(&mut m, &xs);
        m.engine.schedule_all();
        m.engine.fixpoint(&mut m.store).unwrap(); // runs with zero clauses
        base.lock().unwrap().add_clause(vec![(xs[1], 5)]);
        m.engine.schedule_all();
        m.engine.fixpoint(&mut m.store).unwrap();
        assert!(!m.store.dom(xs[1]).contains(5));
        assert_eq!(base.lock().unwrap().posted, 1);
    }

    #[test]
    fn clear_disarms_the_base() {
        let mut m = Model::new();
        let xs = vars(&mut m, 2, 5);
        let base = base_with(&mut m, &xs);
        base.lock().unwrap().add_clause(vec![(xs[0], 0)]);
        m.engine.schedule_all();
        m.engine.fixpoint(&mut m.store).unwrap();
        base.lock().unwrap().clear();
        assert_eq!(base.lock().unwrap().num_clauses(), 0);
        m.engine.schedule_all();
        m.engine.fixpoint(&mut m.store).unwrap(); // no panic, no effect
        m.store.push_level();
        m.store.fix(xs[0], 1).unwrap();
        m.engine.fixpoint(&mut m.store).unwrap();
        m.store.pop_level();
    }
}
