//! The variable store: domains plus a trail for chronological backtracking.
//!
//! All domain mutation during search goes through [`Store`] methods, which
//! transparently save the pre-modification domain the first time a variable
//! is touched at the current search level. [`Store::push_level`] opens a new
//! level; [`Store::pop_level`] restores every domain changed since the
//! matching push. Changes made at the root level (before any push) are
//! permanent, which is how model set-up and branch-and-bound tightening of
//! the objective bound are expressed.

use crate::domain::{Domain, DomainEvent};
use std::fmt;

/// Index of a finite-domain variable in a [`Store`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

impl VarId {
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Raised when a domain becomes empty: the current search node is dead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fail;

/// Outcome alias used by every propagation routine.
pub type PropResult = Result<(), Fail>;

pub struct Store {
    domains: Vec<Domain>,
    names: Vec<String>,
    /// (var, saved domain) entries, chronological.
    trail: Vec<(u32, Domain)>,
    /// (trail length, magic) at each open level. The magic identifies the
    /// level instance: it is never reused, so a variable saved at a popped
    /// level is correctly re-saved when the *parent* level mutates it.
    level_marks: Vec<(usize, u64)>,
    /// Magic of the level at which each var was last trailed; avoids
    /// trailing the same var twice in one level.
    saved_at: Vec<u64>,
    /// Incremented on every `push_level`; never reused.
    magic: u64,
    /// Modification log: (var, event) entries accumulated since the engine
    /// last drained them. One entry per mutation, classified by effect.
    log: Vec<(u32, DomainEvent)>,
    /// Monotone count of domain mutations (never rewound on backtrack);
    /// deltas around a propagator run give its pruning count.
    changes: u64,
    /// When false, every new variable is [`Domain::pin`]ned to the
    /// interval-list representation — the `--no-bitset` A/B baseline.
    bitset_enabled: bool,
}

impl Store {
    pub fn new() -> Self {
        Store {
            domains: Vec::new(),
            names: Vec::new(),
            trail: Vec::new(),
            level_marks: Vec::new(),
            saved_at: Vec::new(),
            magic: 0,
            log: Vec::new(),
            changes: 0,
            bitset_enabled: true,
        }
    }

    /// Enable or disable the bitset domain representation for variables
    /// created *after* this call (existing domains keep their
    /// representation). Disabling pins new domains to the interval list;
    /// search behaviour is identical either way — this exists as the
    /// `--no-bitset` A/B baseline.
    pub fn set_bitset(&mut self, on: bool) {
        self.bitset_enabled = on;
    }

    /// `(bitset, interval-list)` counts over the current domains — the
    /// domain-representation histogram surfaced in run metrics.
    pub fn domain_rep_counts(&self) -> (usize, usize) {
        let bits = self.domains.iter().filter(|d| d.is_bitset()).count();
        (bits, self.domains.len() - bits)
    }

    /// Create a variable with domain `lo..=hi`.
    pub fn new_var(&mut self, lo: i32, hi: i32) -> VarId {
        self.new_var_named(lo, hi, "")
    }

    /// Create a variable with a diagnostic name.
    pub fn new_var_named(&mut self, lo: i32, hi: i32, name: &str) -> VarId {
        assert!(lo <= hi, "empty initial domain {lo}..{hi} for {name}");
        assert!(
            self.level_marks.is_empty(),
            "variables must be created at the root level"
        );
        let id = VarId(self.domains.len() as u32);
        let mut dom = Domain::interval(lo, hi);
        if !self.bitset_enabled {
            dom.pin();
        }
        self.domains.push(dom);
        self.names.push(name.to_string());
        self.saved_at.push(0);
        id
    }

    /// Create a variable with an explicit (possibly holey) domain.
    pub fn new_var_with_domain(&mut self, mut dom: Domain, name: &str) -> VarId {
        assert!(!dom.is_empty(), "empty initial domain for {name}");
        if !self.bitset_enabled {
            dom.pin();
        }
        assert!(
            self.level_marks.is_empty(),
            "variables must be created at the root level"
        );
        let id = VarId(self.domains.len() as u32);
        self.domains.push(dom);
        self.names.push(name.to_string());
        self.saved_at.push(0);
        id
    }

    /// Create a constant (singleton) variable.
    pub fn new_const(&mut self, v: i32) -> VarId {
        self.new_var(v, v)
    }

    pub fn num_vars(&self) -> usize {
        self.domains.len()
    }

    pub fn name(&self, v: VarId) -> &str {
        &self.names[v.idx()]
    }

    #[inline]
    pub fn dom(&self, v: VarId) -> &Domain {
        &self.domains[v.idx()]
    }

    #[inline]
    pub fn min(&self, v: VarId) -> i32 {
        self.domains[v.idx()].min()
    }

    #[inline]
    pub fn max(&self, v: VarId) -> i32 {
        self.domains[v.idx()].max()
    }

    #[inline]
    pub fn is_fixed(&self, v: VarId) -> bool {
        self.domains[v.idx()].is_fixed()
    }

    /// FNV-1a 64-bit digest of every variable's (min, max) bounds, in
    /// variable order. Two stores with the same shape hash equal iff all
    /// bounds agree — the replay engine compares these digests to pin the
    /// solver's domain trajectory, not just its decision sequence.
    /// Interior holes are deliberately not hashed: bounds are O(1) per
    /// variable where interval lists are not, and a hole can only affect
    /// the search after it reaches a bound, which the next digest sees.
    pub fn state_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for d in &self.domains {
            for b in d
                .min()
                .to_le_bytes()
                .into_iter()
                .chain(d.max().to_le_bytes())
            {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }

    /// The assigned value; panics if not fixed (use in extraction paths).
    #[inline]
    pub fn value(&self, v: VarId) -> i32 {
        self.domains[v.idx()].value().expect("variable not fixed")
    }

    #[inline]
    pub fn size(&self, v: VarId) -> u64 {
        self.domains[v.idx()].size()
    }

    /// Current search depth (0 = root).
    pub fn depth(&self) -> usize {
        self.level_marks.len()
    }

    /// Open a new backtrack level.
    pub fn push_level(&mut self) {
        self.magic += 1;
        self.level_marks.push((self.trail.len(), self.magic));
    }

    /// Restore every domain changed since the last `push_level`.
    pub fn pop_level(&mut self) {
        let (mark, _) = self.level_marks.pop().expect("pop_level at root");
        while self.trail.len() > mark {
            let (var, dom) = self.trail.pop().unwrap();
            self.domains[var as usize] = dom;
        }
        self.log.clear();
    }

    #[inline]
    fn save(&mut self, v: VarId) {
        let Some(&(_, level_magic)) = self.level_marks.last() else {
            return; // root-level changes are permanent
        };
        if self.saved_at[v.idx()] != level_magic {
            self.saved_at[v.idx()] = level_magic;
            self.trail.push((v.0, self.domains[v.idx()].clone()));
        }
    }

    #[inline]
    fn after_change(&mut self, v: VarId, ev: DomainEvent) -> PropResult {
        self.changes += 1;
        if self.domains[v.idx()].is_empty() {
            Err(Fail)
        } else {
            debug_assert!(!ev.is_empty(), "every change must fire an event");
            self.log.push((v.0, ev));
            Ok(())
        }
    }

    /// Event bits that describe the transition from `(old_min, old_max)`
    /// to the current domain of `v`, assuming the domain is non-empty.
    #[inline]
    fn bound_event(&self, v: VarId, old_min: i32, old_max: i32) -> DomainEvent {
        let d = &self.domains[v.idx()];
        if d.is_empty() {
            return DomainEvent::ANY; // failing entry is never logged
        }
        let mut ev = DomainEvent::NONE;
        if d.min() > old_min {
            ev |= DomainEvent::MIN;
        }
        if d.max() < old_max {
            ev |= DomainEvent::MAX;
        }
        if d.is_fixed() && old_min != old_max {
            ev |= DomainEvent::FIX;
        }
        if ev.is_empty() {
            // Changed without moving a bound or fixing: interior removal.
            ev = DomainEvent::HOLE;
        }
        ev
    }

    /// Total domain mutations so far (monotone; includes the mutation
    /// that emptied a domain on failure).
    #[inline]
    pub fn change_count(&self) -> u64 {
        self.changes
    }

    /// Drain the modification log (consumed by the engine).
    pub(crate) fn take_events(&mut self) -> Vec<(u32, DomainEvent)> {
        std::mem::take(&mut self.log)
    }

    pub(crate) fn has_events(&self) -> bool {
        !self.log.is_empty()
    }

    // ---- mutation API -----------------------------------------------------

    /// `v ≥ lo`.
    pub fn remove_below(&mut self, v: VarId, lo: i32) -> PropResult {
        if self.domains[v.idx()].min() >= lo {
            return Ok(());
        }
        let was_fixed = self.domains[v.idx()].is_fixed();
        self.save(v);
        self.domains[v.idx()].remove_below(lo);
        let mut ev = DomainEvent::MIN;
        if !was_fixed && self.domains[v.idx()].is_fixed() {
            ev |= DomainEvent::FIX;
        }
        self.after_change(v, ev)
    }

    /// `v ≤ hi`.
    pub fn remove_above(&mut self, v: VarId, hi: i32) -> PropResult {
        if self.domains[v.idx()].max() <= hi {
            return Ok(());
        }
        let was_fixed = self.domains[v.idx()].is_fixed();
        self.save(v);
        self.domains[v.idx()].remove_above(hi);
        let mut ev = DomainEvent::MAX;
        if !was_fixed && self.domains[v.idx()].is_fixed() {
            ev |= DomainEvent::FIX;
        }
        self.after_change(v, ev)
    }

    /// `v ≠ val`.
    pub fn remove_value(&mut self, v: VarId, val: i32) -> PropResult {
        let d = &self.domains[v.idx()];
        if !d.contains(val) {
            return Ok(());
        }
        let (old_min, old_max) = (d.min(), d.max());
        self.save(v);
        self.domains[v.idx()].remove_value(val);
        let ev = self.bound_event(v, old_min, old_max);
        self.after_change(v, ev)
    }

    /// `v = val`. Fails if `val` is not in the domain.
    pub fn fix(&mut self, v: VarId, val: i32) -> PropResult {
        let d = &self.domains[v.idx()];
        if d.value() == Some(val) {
            return Ok(());
        }
        if !d.contains(val) {
            return Err(Fail);
        }
        let mut ev = DomainEvent::FIX;
        if d.min() < val {
            ev |= DomainEvent::MIN;
        }
        if d.max() > val {
            ev |= DomainEvent::MAX;
        }
        self.save(v);
        self.domains[v.idx()].fix(val);
        self.after_change(v, ev)
    }

    /// `v ∈ [lo, hi]`.
    pub fn restrict_to_interval(&mut self, v: VarId, lo: i32, hi: i32) -> PropResult {
        self.remove_below(v, lo)?;
        self.remove_above(v, hi)
    }

    /// `v ∈ other` (intersect with an explicit domain).
    pub fn intersect(&mut self, v: VarId, other: &Domain) -> PropResult {
        // Probe cheaply: bounds-only fast path.
        let d = &self.domains[v.idx()];
        if d.min() >= other.min() && d.max() <= other.max() && other.interval_count() == 1 {
            return Ok(());
        }
        let (old_min, old_max) = (d.min(), d.max());
        self.save(v);
        let changed = self.domains[v.idx()].intersect(other);
        if changed {
            let ev = self.bound_event(v, old_min, old_max);
            self.after_change(v, ev)
        } else {
            Ok(())
        }
    }
}

impl Default for Store {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Store {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Store(depth={}):", self.depth())?;
        for (i, d) in self.domains.iter().enumerate() {
            let name = if self.names[i].is_empty() {
                format!("x{i}")
            } else {
                self.names[i].clone()
            };
            writeln!(f, "  {name} = {d:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_restores_domains() {
        let mut s = Store::new();
        let x = s.new_var(0, 9);
        let y = s.new_var(0, 9);
        s.push_level();
        s.remove_below(x, 5).unwrap();
        s.fix(y, 3).unwrap();
        assert_eq!(s.min(x), 5);
        assert_eq!(s.value(y), 3);
        s.pop_level();
        assert_eq!(s.min(x), 0);
        assert_eq!(s.dom(y).size(), 10);
    }

    #[test]
    fn nested_levels_restore_in_order() {
        let mut s = Store::new();
        let x = s.new_var(0, 10);
        s.push_level();
        s.remove_above(x, 8).unwrap();
        s.push_level();
        s.remove_above(x, 4).unwrap();
        s.push_level();
        s.fix(x, 2).unwrap();
        s.pop_level();
        assert_eq!(s.max(x), 4);
        s.pop_level();
        assert_eq!(s.max(x), 8);
        s.pop_level();
        assert_eq!(s.max(x), 10);
    }

    #[test]
    fn root_changes_are_permanent() {
        let mut s = Store::new();
        let x = s.new_var(0, 10);
        s.remove_below(x, 3).unwrap(); // root-level
        s.push_level();
        s.remove_below(x, 7).unwrap();
        s.pop_level();
        assert_eq!(s.min(x), 3);
    }

    #[test]
    fn fix_outside_domain_fails() {
        let mut s = Store::new();
        let x = s.new_var(0, 5);
        s.push_level();
        assert_eq!(s.fix(x, 9), Err(Fail));
    }

    #[test]
    fn empty_domain_fails_and_pop_recovers() {
        let mut s = Store::new();
        let x = s.new_var(0, 5);
        s.push_level();
        s.remove_below(x, 4).unwrap();
        assert_eq!(s.remove_above(x, 3), Err(Fail));
        s.pop_level();
        assert_eq!(s.min(x), 0);
        assert_eq!(s.max(x), 5);
    }

    #[test]
    fn log_tracks_changes_with_events() {
        let mut s = Store::new();
        let x = s.new_var(0, 5);
        let y = s.new_var(0, 5);
        s.push_level();
        s.remove_below(x, 1).unwrap();
        s.remove_below(x, 2).unwrap();
        s.fix(y, 0).unwrap();
        let log = s.take_events();
        assert_eq!(log.len(), 3);
        assert!(log
            .iter()
            .any(|&(v, ev)| v == x.0 && ev.contains(DomainEvent::MIN)));
        // Fixing y at its old minimum lowers only the maximum.
        assert!(log
            .iter()
            .any(|&(v, ev)| v == y.0 && ev.contains(DomainEvent::FIX | DomainEvent::MAX)));
        assert!(!s.has_events());
    }

    #[test]
    fn no_op_mutations_do_not_trail() {
        let mut s = Store::new();
        let x = s.new_var(0, 5);
        s.push_level();
        s.remove_below(x, 0).unwrap();
        s.remove_above(x, 5).unwrap();
        s.remove_value(x, 9).unwrap();
        assert!(s.take_events().is_empty());
    }

    #[test]
    fn events_classify_mutations() {
        let mut s = Store::new();
        let x = s.new_var_with_domain(Domain::from_values([0, 2, 4, 6, 8]), "x");
        s.push_level();
        s.remove_value(x, 4).unwrap(); // interior: no bound moves
        s.remove_value(x, 0).unwrap(); // old minimum
        s.remove_above(x, 7).unwrap(); // maximum drops to 6
        s.remove_value(x, 6).unwrap(); // max removal leaves {2}: fixed
        let log = s.take_events();
        let evs: Vec<DomainEvent> = log.iter().map(|&(_, ev)| ev).collect();
        assert_eq!(
            evs,
            vec![
                DomainEvent::HOLE,
                DomainEvent::MIN,
                DomainEvent::MAX,
                DomainEvent::MAX | DomainEvent::FIX,
            ]
        );
    }

    #[test]
    fn same_level_saves_once_but_restores_original() {
        let mut s = Store::new();
        let x = s.new_var(0, 100);
        s.push_level();
        for lo in 1..50 {
            s.remove_below(x, lo).unwrap();
        }
        assert_eq!(s.trail.len(), 1);
        s.pop_level();
        assert_eq!(s.min(x), 0);
    }

    /// Regression: a var saved at a *child* level must be re-saved when
    /// the parent level mutates it after the child was popped; otherwise
    /// the parent's pop fails to restore it.
    #[test]
    fn parent_level_saves_after_child_pop() {
        let mut s = Store::new();
        let x = s.new_var(0, 10);
        s.push_level(); // parent
        s.push_level(); // child
        s.remove_above(x, 8).unwrap(); // saved at child
        s.pop_level(); // x restored to [0,10]
        s.remove_above(x, 5).unwrap(); // must be saved at parent
        s.pop_level();
        assert_eq!(s.max(x), 10);
    }

    #[test]
    fn bitset_switch_pins_new_vars_without_changing_behaviour() {
        let mut on = Store::new();
        let mut off = Store::new();
        off.set_bitset(false);
        let xs: Vec<VarId> = (0..3).map(|_| on.new_var(0, 60)).collect();
        let ys: Vec<VarId> = (0..3).map(|_| off.new_var(0, 60)).collect();
        assert_eq!(on.domain_rep_counts(), (3, 0));
        assert_eq!(off.domain_rep_counts(), (0, 3));
        on.push_level();
        off.push_level();
        for (&x, &y) in xs.iter().zip(&ys) {
            on.remove_value(x, 30).unwrap();
            off.remove_value(y, 30).unwrap();
            on.remove_below(x, 10).unwrap();
            off.remove_below(y, 10).unwrap();
        }
        assert_eq!(on.state_hash(), off.state_hash());
        assert_eq!(on.take_events(), off.take_events());
        for (&x, &y) in xs.iter().zip(&ys) {
            assert_eq!(on.dom(x), off.dom(y));
        }
        // The A/B baseline sticks across backtracking.
        off.pop_level();
        assert_eq!(off.domain_rep_counts(), (0, 3));
    }

    #[test]
    fn magic_not_confused_by_pop_then_push() {
        let mut s = Store::new();
        let x = s.new_var(0, 10);
        s.push_level();
        s.remove_below(x, 2).unwrap();
        s.pop_level();
        s.push_level();
        // If the stamp were reused, this change would not be trailed.
        s.remove_below(x, 5).unwrap();
        s.pop_level();
        assert_eq!(s.min(x), 0);
    }
}
