//! Replay: re-validate a recorded solve in O(trace) without re-searching.
//!
//! The solver is deterministic — a fixed model and configuration always
//! produce the same event stream — so replay does not interpret the
//! recorded decisions itself. Instead it re-drives the real search with a
//! [`ValidatingSink`] that compares every live event against the recorded
//! stream in lock-step and raises a [`CancelToken`] at the first
//! mismatch. The comparison forces the replay to follow the recorded
//! trajectory: while events agree the solver is, by induction, in exactly
//! the recorded state (same branches, same propagation outcomes, same
//! store digests), and the moment they disagree the search aborts within
//! one node. A faithful replay therefore costs exactly the recorded tree
//! — node for node — and a divergent one costs the shared prefix plus one
//! node, never a re-search.
//!
//! Two strictness levels:
//! - **strict**: every event must match exactly, byte for byte. Any
//!   solver change that alters the trajectory fails.
//! - **lenient**: only *outcome* events are compared — incumbents
//!   ([`SearchEvent::Solution`], objective only), bound updates, store
//!   digests ([`SearchEvent::StateHash`], hash only) and the terminal
//!   [`SearchEvent::Done`] (status + solution count). Changes that merely
//!   shuffle fail/backtrack bookkeeping pass; anything that changes what
//!   the solver concluded, or the states it passed through, still fails.
//!
//! A mismatch produces a [`DivergenceReport`]: the first mismatching
//! event index, expected vs actual, a window of recorded context around
//! it, and the depth/node statistics at the divergence point.

use crate::cancel::CancelToken;
use crate::search::{minimize, solve, SearchConfig, SearchResult};
use crate::store::VarId;
use crate::trace::{SearchEvent, TraceHandle, TraceSink};
use std::fmt;
use std::sync::{Arc, Mutex};

/// How [`replay`] compares live events against the recording.
#[derive(Clone, Copy, Debug)]
pub struct ReplayOptions {
    /// `true`: any event mismatch fails. `false` (lenient): only
    /// outcome/hash mismatches fail.
    pub strict: bool,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        ReplayOptions { strict: true }
    }
}

/// Where and how a replay first left the recorded trajectory.
#[derive(Clone, Debug)]
pub struct DivergenceReport {
    /// Index into the recorded event stream of the first mismatch.
    pub index: usize,
    /// What the recording says should have happened there (`None`: the
    /// live run produced more events than were recorded).
    pub expected: Option<SearchEvent>,
    /// What the live run actually produced (`None`: the live run ended
    /// before reaching this recorded event).
    pub actual: Option<SearchEvent>,
    /// Recorded events surrounding the mismatch (up to
    /// [`CONTEXT_WINDOW`] on each side), for orientation.
    pub context: Vec<SearchEvent>,
    /// Index of the first context event in the recorded stream.
    pub context_start: usize,
    /// Search depth when the divergence surfaced.
    pub depth: usize,
    /// Live node count when the divergence surfaced.
    pub nodes: u64,
}

/// Recorded events kept on each side of a divergence.
pub const CONTEXT_WINDOW: usize = 3;

impl fmt::Display for DivergenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "divergence at recorded event {} (depth {}, {} live nodes):",
            self.index, self.depth, self.nodes
        )?;
        match &self.expected {
            Some(e) => writeln!(f, "  expected: {}", e.to_json())?,
            None => writeln!(f, "  expected: <end of recorded trace>")?,
        }
        match &self.actual {
            Some(e) => writeln!(f, "  actual:   {}", e.to_json())?,
            None => writeln!(f, "  actual:   <live run emitted no event here>")?,
        }
        writeln!(f, "  recorded context:")?;
        for (i, e) in self.context.iter().enumerate() {
            let idx = self.context_start + i;
            let marker = if idx == self.index { ">>" } else { "  " };
            writeln!(f, "  {marker} [{idx}] {}", e.to_json())?;
        }
        Ok(())
    }
}

/// Outcome of one [`replay`] run.
#[derive(Debug)]
pub struct ReplayReport {
    /// The replay matched the recording end to end.
    pub ok: bool,
    /// Events actually compared (in lenient mode, outcome events only).
    pub checked: u64,
    /// Total events in the recording.
    pub recorded_events: usize,
    pub divergence: Option<DivergenceReport>,
    /// The re-driven search's result (objective, stats, status). On a
    /// clean strict replay its node count equals the recorded one.
    pub result: SearchResult,
}

/// Is `e` an outcome event — one lenient mode still checks?
fn is_outcome(e: &SearchEvent) -> bool {
    matches!(
        e,
        SearchEvent::Solution { .. }
            | SearchEvent::BoundUpdate { .. }
            | SearchEvent::StateHash { .. }
            | SearchEvent::Done { .. }
    )
}

/// Lenient comparison: same outcome, bookkeeping fields ignored.
fn lenient_eq(expected: &SearchEvent, actual: &SearchEvent) -> bool {
    use SearchEvent::*;
    match (expected, actual) {
        (Solution { objective: a, .. }, Solution { objective: b, .. }) => a == b,
        (BoundUpdate { bound: a }, BoundUpdate { bound: b }) => a == b,
        (StateHash { hash: a, .. }, StateHash { hash: b, .. }) => a == b,
        (
            Done {
                status: a,
                solutions: sa,
                ..
            },
            Done {
                status: b,
                solutions: sb,
                ..
            },
        ) => a == b && sa == sb,
        _ => false,
    }
}

/// The lock-step comparator. Plugs into the search as an ordinary trace
/// sink; when a live event disagrees with the recording it files a
/// [`DivergenceReport`] and cancels the search, so replay never explores
/// past the first divergence.
pub struct ValidatingSink {
    recorded: Vec<SearchEvent>,
    cursor: usize,
    strict: bool,
    cancel: CancelToken,
    divergence: Option<DivergenceReport>,
    checked: u64,
    /// Depth/nodes trackers fed from the live stream, for the report.
    depth: usize,
    nodes: u64,
}

impl ValidatingSink {
    pub fn new(recorded: Vec<SearchEvent>, strict: bool, cancel: CancelToken) -> Self {
        ValidatingSink {
            recorded,
            cursor: 0,
            strict,
            cancel,
            divergence: None,
            checked: 0,
            depth: 0,
            nodes: 0,
        }
    }

    fn diverge(&mut self, index: usize, actual: Option<SearchEvent>) {
        let lo = index.saturating_sub(CONTEXT_WINDOW);
        let hi = (index + CONTEXT_WINDOW + 1).min(self.recorded.len());
        self.divergence = Some(DivergenceReport {
            index,
            expected: self.recorded.get(index).cloned(),
            actual,
            context: self.recorded[lo..hi].to_vec(),
            context_start: lo,
            depth: self.depth,
            nodes: self.nodes,
        });
        self.cancel.cancel();
    }

    /// Called after the search returns: a live run that ended while
    /// checked recorded events remain is itself a divergence.
    fn finish(&mut self) {
        if self.divergence.is_some() {
            return;
        }
        let remaining = self.recorded[self.cursor..]
            .iter()
            .position(|e| self.strict || is_outcome(e));
        if let Some(off) = remaining {
            self.diverge(self.cursor + off, None);
        }
    }
}

impl TraceSink for ValidatingSink {
    fn record(&mut self, live: &SearchEvent) {
        match live {
            SearchEvent::Branch { depth, .. }
            | SearchEvent::Fail { depth }
            | SearchEvent::Backtrack { depth } => self.depth = *depth,
            SearchEvent::Solution { nodes, .. }
            | SearchEvent::StateHash { nodes, .. }
            | SearchEvent::Done { nodes, .. } => self.nodes = *nodes,
            _ => {}
        }
        // After a divergence the search is being cancelled; whatever it
        // emits on the way out (including the Cancelled event our own
        // token caused) is noise, not further mismatches.
        if self.divergence.is_some() {
            return;
        }
        if !self.strict && !is_outcome(live) {
            return;
        }
        // Skip recorded events the lenient comparator does not check.
        while !self.strict && self.cursor < self.recorded.len() {
            if is_outcome(&self.recorded[self.cursor]) {
                break;
            }
            self.cursor += 1;
        }
        let Some(expected) = self.recorded.get(self.cursor) else {
            // Live run goes on past the end of the recording.
            self.diverge(self.recorded.len(), Some(live.clone()));
            return;
        };
        let matches = if self.strict {
            expected == live
        } else {
            lenient_eq(expected, live)
        };
        if matches {
            self.cursor += 1;
            self.checked += 1;
        } else {
            self.diverge(self.cursor, Some(live.clone()));
        }
    }
}

/// Re-drive `model` under `config` and validate it against `recorded`.
///
/// `config` must reconstruct the recorded run exactly (same phases, same
/// restart policy, same [`SearchConfig::state_hash_every`] as the trace
/// header); `objective` selects minimization vs satisfaction, matching
/// the original call. Any `trace`/`cancel` already in `config` is
/// replaced by the validator's own. Budgets (`timeout`, `node_limit`) are
/// kept: a recorded budget abort replays as one only if the budget is
/// reconstructed too, and wall-clock deadlines are inherently
/// nondeterministic — replay deterministic (completed) recordings.
pub fn replay(
    model: &mut crate::model::Model,
    objective: Option<VarId>,
    config: &SearchConfig,
    recorded: &[SearchEvent],
    opts: &ReplayOptions,
) -> ReplayReport {
    let cancel = CancelToken::new();
    let sink = Arc::new(Mutex::new(ValidatingSink::new(
        recorded.to_vec(),
        opts.strict,
        cancel.clone(),
    )));
    let mut cfg = config.clone();
    cfg.trace = Some(TraceHandle::new(Arc::clone(&sink)));
    cfg.cancel = Some(cancel);
    let result = match objective {
        Some(obj) => minimize(model, obj, &cfg),
        None => solve(model, &cfg),
    };
    let mut sink = sink.lock().unwrap_or_else(|e| e.into_inner());
    sink.finish();
    ReplayReport {
        ok: sink.divergence.is_none(),
        checked: sink.checked,
        recorded_events: recorded.len(),
        divergence: sink.divergence.take(),
        result,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;
    use crate::props::basic::{MaxOf, NeqOffset};
    use crate::search::{Phase, SearchStatus, ValSel, VarSel};
    use crate::trace::MemorySink;

    /// 5 mutually-different vars, minimize the max: small but real BnB.
    fn build() -> (Model, VarId, Vec<VarId>) {
        let mut m = Model::new();
        let vars: Vec<VarId> = (0..5).map(|_| m.new_var(0, 6)).collect();
        for i in 0..vars.len() {
            for j in (i + 1)..vars.len() {
                m.post(Box::new(NeqOffset {
                    x: vars[i],
                    y: vars[j],
                    c: 0,
                }));
            }
        }
        let obj = m.new_var(0, 6);
        m.post(Box::new(MaxOf {
            xs: vars.clone(),
            y: obj,
        }));
        (m, obj, vars)
    }

    fn cfg(vars: Vec<VarId>, val_sel: ValSel) -> SearchConfig {
        SearchConfig {
            phases: vec![Phase::new(vars, VarSel::FirstFail, val_sel)],
            restart_on_solution: true,
            state_hash_every: Some(2),
            ..Default::default()
        }
    }

    fn record(val_sel: ValSel) -> (Vec<SearchEvent>, SearchResult) {
        let (mut m, obj, vars) = build();
        let sink = Arc::new(Mutex::new(MemorySink::unbounded()));
        let mut c = cfg(vars, val_sel);
        c.trace = Some(TraceHandle::new(Arc::clone(&sink)));
        let r = minimize(&mut m, obj, &c);
        let events = sink.lock().unwrap().events.iter().cloned().collect();
        (events, r)
    }

    #[test]
    fn faithful_replay_matches_node_for_node() {
        let (events, recorded_result) = record(ValSel::Min);
        let (mut m, obj, vars) = build();
        let report = replay(
            &mut m,
            Some(obj),
            &cfg(vars, ValSel::Min),
            &events,
            &ReplayOptions { strict: true },
        );
        assert!(report.ok, "unexpected divergence: {:?}", report.divergence);
        assert_eq!(report.checked as usize, events.len());
        // "Without re-searching": the replay explored exactly the
        // recorded tree.
        assert_eq!(report.result.stats.nodes, recorded_result.stats.nodes);
        assert_eq!(report.result.objective, recorded_result.objective);
        assert_eq!(report.result.status, SearchStatus::Optimal);
    }

    #[test]
    fn perturbed_value_ordering_diverges_at_first_branch() {
        let (events, _) = record(ValSel::Min);
        let (mut m, obj, vars) = build();
        // The injected perturbation: flip the value ordering.
        let report = replay(
            &mut m,
            Some(obj),
            &cfg(vars, ValSel::Max),
            &events,
            &ReplayOptions { strict: true },
        );
        assert!(!report.ok);
        let d = report.divergence.expect("divergence report");
        // First mismatch is the very first decision: Start matches, the
        // first Branch picks max instead of min.
        assert!(matches!(d.expected, Some(SearchEvent::Branch { .. })));
        assert!(matches!(d.actual, Some(SearchEvent::Branch { .. })));
        assert_ne!(d.expected, d.actual);
        assert!(!d.context.is_empty());
        assert!(d.context_start <= d.index);
        // The search aborted immediately rather than exploring the
        // perturbed tree.
        assert!(report.result.cancelled);
        assert!(report.result.stats.nodes <= 2);
    }

    #[test]
    fn lenient_replay_tolerates_bookkeeping_but_not_outcomes() {
        let (events, _) = record(ValSel::Min);
        // Drop every fail/backtrack event — lenient must still pass.
        let thinned: Vec<SearchEvent> = events
            .iter()
            .filter(|e| !matches!(e, SearchEvent::Fail { .. } | SearchEvent::Backtrack { .. }))
            .cloned()
            .collect();
        let (mut m, obj, vars) = build();
        let report = replay(
            &mut m,
            Some(obj),
            &cfg(vars.clone(), ValSel::Min),
            &thinned,
            &ReplayOptions { strict: false },
        );
        assert!(report.ok, "lenient diverged: {:?}", report.divergence);

        // But a corrupted store digest must fail even leniently.
        let mut corrupt = events;
        for e in &mut corrupt {
            if let SearchEvent::StateHash { hash, .. } = e {
                *hash ^= 1;
                break;
            }
        }
        let (mut m2, obj2, vars2) = build();
        let report = replay(
            &mut m2,
            Some(obj2),
            &cfg(vars2, ValSel::Min),
            &corrupt,
            &ReplayOptions { strict: false },
        );
        assert!(!report.ok);
        let d = report.divergence.unwrap();
        assert!(matches!(d.expected, Some(SearchEvent::StateHash { .. })));
    }

    #[test]
    fn truncated_recording_is_reported_as_missing_live_events() {
        let (events, _) = record(ValSel::Min);
        let cut = &events[..events.len() - 1]; // drop the Done record
        let (mut m, obj, vars) = build();
        let report = replay(
            &mut m,
            Some(obj),
            &cfg(vars, ValSel::Min),
            cut,
            &ReplayOptions { strict: true },
        );
        assert!(!report.ok);
        let d = report.divergence.unwrap();
        assert_eq!(d.index, cut.len());
        assert!(d.expected.is_none());
        assert!(matches!(d.actual, Some(SearchEvent::Done { .. })));
    }

    #[test]
    fn overlong_recording_is_reported_at_the_first_unreached_event() {
        let (mut events, _) = record(ValSel::Min);
        events.push(SearchEvent::Fail { depth: 0 });
        let (mut m, obj, vars) = build();
        let report = replay(
            &mut m,
            Some(obj),
            &cfg(vars, ValSel::Min),
            &events,
            &ReplayOptions { strict: true },
        );
        assert!(!report.ok);
        let d = report.divergence.unwrap();
        assert_eq!(d.index, events.len() - 1);
        assert!(d.actual.is_none());
        let report_text = d.to_string();
        assert!(report_text.contains("divergence at recorded event"));
    }
}
