//! Cooperative cancellation for parallel solver harnesses.
//!
//! A [`CancelToken`] is a cheap cloneable flag shared between a running
//! search and the coordinator that may decide its result is no longer
//! needed (a speculative II probe overtaken by a lower feasible II, an
//! EPS subproblem past the winning index, a service request whose client
//! deadline expired, …). Cancellation is *polled*: the search loop
//! checks the token at every node (with the deadline and node-limit
//! budgets) and the propagation engine checks it periodically inside
//! [`crate::engine::Engine::fixpoint`], so even a probe stuck in a long
//! fixpoint stops within a bounded number of propagator runs.
//!
//! Besides the explicit [`CancelToken::cancel`] flag a token can carry a
//! **wall-clock deadline** ([`CancelToken::with_deadline`]): once the
//! deadline passes, [`CancelToken::is_cancelled`] reports `true` without
//! anyone calling `cancel()`. Because cancellation is polled anyway,
//! a per-request time budget needs no dedicated watchdog thread per
//! solve — the deadline rides along wherever the token is already
//! checked. [`CancelToken::child`] derives a token that is independently
//! cancellable but also trips when its parent (or the parent's deadline)
//! does, which is how a request-level budget reaches every speculative
//! probe of a modulo sweep without collapsing their individual
//! cancellation.
//!
//! A cancelled run is reported as *aborted*, exactly like a timeout:
//! `completed` stays `false`, an exhausted-looking tree is **not**
//! interpreted as an infeasibility proof, and the trail is unwound to the
//! root as usual — cancellation never poisons the store.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shared cancellation flag, optionally deadline-bearing. Cloning is
/// cheap (an [`Arc`] bump per link in the parent chain); all clones
/// observe the same flag.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
    parent: Option<Box<CancelToken>>,
}

impl CancelToken {
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that trips itself once `deadline` passes, with no
    /// watchdog thread: the clock is read inside [`Self::is_cancelled`],
    /// which the search already polls at every node.
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            flag: Arc::default(),
            deadline: Some(deadline),
            parent: None,
        }
    }

    /// [`Self::with_deadline`] at `budget` from now.
    pub fn with_budget(budget: Duration) -> Self {
        Self::with_deadline(Instant::now() + budget)
    }

    /// The wall-clock deadline this token trips at, if any (the
    /// tightest along the parent chain).
    pub fn deadline(&self) -> Option<Instant> {
        match (
            self.deadline,
            self.parent.as_ref().and_then(|p| p.deadline()),
        ) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Derive a child token: cancellable on its own without affecting
    /// siblings, but also tripped whenever this token is cancelled or
    /// its deadline passes.
    pub fn child(&self) -> CancelToken {
        CancelToken {
            flag: Arc::default(),
            deadline: None,
            parent: Some(Box::new(self.clone())),
        }
    }

    /// Request cancellation. Idempotent; never blocks. Does not affect
    /// the parent (if any) — only this token and its children.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    pub fn is_cancelled(&self) -> bool {
        if self.flag.load(Ordering::Relaxed) {
            return true;
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            return true;
        }
        self.parent.as_ref().is_some_and(|p| p.is_cancelled())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!u.is_cancelled());
        t.cancel();
        assert!(u.is_cancelled());
        t.cancel(); // idempotent
        assert!(t.is_cancelled());
    }

    #[test]
    fn deadline_trips_without_cancel() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
        let far = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!far.is_cancelled());
        assert!(far.deadline().is_some());
    }

    #[test]
    fn child_sees_parent_cancellation_but_not_vice_versa() {
        let parent = CancelToken::new();
        let a = parent.child();
        let b = parent.child();
        a.cancel();
        assert!(a.is_cancelled());
        assert!(!b.is_cancelled());
        assert!(!parent.is_cancelled());
        parent.cancel();
        assert!(b.is_cancelled());
    }

    #[test]
    fn child_inherits_parent_deadline() {
        let parent = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        let c = parent.child();
        assert!(c.is_cancelled());
        assert!(c.deadline().is_some());
    }
}
