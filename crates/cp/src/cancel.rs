//! Cooperative cancellation for parallel solver harnesses.
//!
//! A [`CancelToken`] is a cheap cloneable flag shared between a running
//! search and the coordinator that may decide its result is no longer
//! needed (a speculative II probe overtaken by a lower feasible II, an
//! EPS subproblem past the winning index, …). Cancellation is *polled*:
//! the search loop checks the token at every node (with the deadline and
//! node-limit budgets) and the propagation engine checks it periodically
//! inside [`crate::engine::Engine::fixpoint`], so even a probe stuck in a
//! long fixpoint stops within a bounded number of propagator runs.
//!
//! A cancelled run is reported as *aborted*, exactly like a timeout:
//! `completed` stays `false`, an exhausted-looking tree is **not**
//! interpreted as an infeasibility proof, and the trail is unwound to the
//! root as usual — cancellation never poisons the store.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Shared cancellation flag. Cloning is cheap (an [`Arc`] bump); all
/// clones observe the same flag.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!u.is_cancelled());
        t.cancel();
        assert!(u.is_cancelled());
        t.cancel(); // idempotent
        assert!(t.is_cancelled());
    }
}
