//! Finite integer domains: hybrid bitset / interval-list representation.
//!
//! A [`Domain`] is the set of values a finite-domain variable may still
//! take. Two representations live behind one API:
//!
//! - **Bitset** (`Rep::Bits`): domains whose initial span fits 128 values
//!   — which covers nearly every start/slot variable in the scheduling
//!   models, where horizons and slot budgets are small — store membership
//!   as bits of a `u128` anchored at a fixed `base`. `contains` and
//!   `remove_value` are branch-free bit tests, `size` is a popcount,
//!   `min`/`max` are trailing/leading-zero counts and `intersect` is a
//!   word AND. The anchor never moves: bits are only ever cleared, so a
//!   value's bit position is stable for the lifetime of the domain.
//! - **Interval list** (`Rep::Ivs`): a sorted `Vec` of closed, pairwise
//!   disjoint, non-adjacent intervals `[lo, hi]` — the representation for
//!   wide domains (span > 128), with O(1) bound operations on the common
//!   single-interval case.
//!
//! A wide interval-list domain **promotes** itself to the bitset
//! representation as soon as a narrowing operation brings its span within
//! 128 values (unless it is [`Domain::pin`]ned to the interval list, the
//! A/B baseline). Promotion is invisible: equality, ordering of iterated
//! values, interval runs, bounds and the store's state hash are all
//! representation-independent, so traces and recordings are byte-stable
//! across the two representations.

use std::fmt;
use std::ops::{BitOr, BitOrAssign};

/// Classification of a domain mutation, used by the engine to wake only
/// the propagators whose filtering could be enabled by the change.
///
/// Events are a bitmask because one mutation can have several effects at
/// once: fixing `x ∈ [0,9]` to `4` raises the minimum, lowers the maximum
/// and assigns the variable, so it fires `MIN | MAX | FIX`. The store
/// guarantees that every *actual* change fires at least one bit (an
/// interior removal that moves no bound fires `HOLE`), so a propagator
/// subscribed with [`DomainEvent::ANY`] sees every mutation.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct DomainEvent(u8);

impl DomainEvent {
    /// No effect (never delivered; useful as an accumulator seed).
    pub const NONE: DomainEvent = DomainEvent(0);
    /// The minimum increased.
    pub const MIN: DomainEvent = DomainEvent(1);
    /// The maximum decreased.
    pub const MAX: DomainEvent = DomainEvent(2);
    /// The variable became fixed (singleton domain).
    pub const FIX: DomainEvent = DomainEvent(4);
    /// An interior value was removed without moving either bound.
    pub const HOLE: DomainEvent = DomainEvent(8);
    /// Either bound moved.
    pub const BOUNDS: DomainEvent = DomainEvent(1 | 2);
    /// Any change at all.
    pub const ANY: DomainEvent = DomainEvent(1 | 2 | 4 | 8);

    /// True if no bit is set.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// True if this event shares at least one bit with `mask`.
    #[inline]
    pub fn intersects(self, mask: DomainEvent) -> bool {
        self.0 & mask.0 != 0
    }

    /// True if every bit of `other` is set in `self`.
    #[inline]
    pub fn contains(self, other: DomainEvent) -> bool {
        self.0 & other.0 == other.0
    }
}

impl BitOr for DomainEvent {
    type Output = DomainEvent;
    #[inline]
    fn bitor(self, rhs: DomainEvent) -> DomainEvent {
        DomainEvent(self.0 | rhs.0)
    }
}

impl BitOrAssign for DomainEvent {
    #[inline]
    fn bitor_assign(&mut self, rhs: DomainEvent) {
        self.0 |= rhs.0;
    }
}

impl fmt::Debug for DomainEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        let mut put = |f: &mut fmt::Formatter<'_>, s: &str| -> fmt::Result {
            if !first {
                write!(f, "|")?;
            }
            first = false;
            write!(f, "{s}")
        };
        if self.is_empty() {
            return write!(f, "NONE");
        }
        if self.contains(DomainEvent::MIN) {
            put(f, "MIN")?;
        }
        if self.contains(DomainEvent::MAX) {
            put(f, "MAX")?;
        }
        if self.contains(DomainEvent::FIX) {
            put(f, "FIX")?;
        }
        if self.contains(DomainEvent::HOLE) {
            put(f, "HOLE")?;
        }
        Ok(())
    }
}

/// Maximum span (inclusive value count) the bitset representation holds.
pub const BITSET_SPAN: i64 = 128;

/// Bits at offsets `≥ o` (offsets count from a bitset's base).
#[inline]
fn mask_ge(o: i64) -> u128 {
    if o <= 0 {
        u128::MAX
    } else if o >= 128 {
        0
    } else {
        u128::MAX << o
    }
}

/// Bits at offsets `≤ o`.
#[inline]
fn mask_le(o: i64) -> u128 {
    if o < 0 {
        0
    } else if o >= 127 {
        u128::MAX
    } else {
        (1u128 << (o + 1)) - 1
    }
}

#[derive(Clone)]
enum Rep {
    /// Membership bitset over `[base, base + 127]`: bit `i` ⇔ `base + i`
    /// is a member. The base is fixed at creation/promotion time and bits
    /// are only ever cleared, so offsets stay stable.
    Bits { base: i32, bits: u128 },
    /// Sorted, disjoint, non-adjacent closed intervals. Empty ⇔ domain
    /// empty. `pinned` suppresses promotion to the bitset representation
    /// (the `--no-bitset` A/B baseline).
    Ivs { ivs: Vec<(i32, i32)>, pinned: bool },
}

/// A finite set of `i32` values (see the module docs for the two
/// representations).
#[derive(Clone)]
pub struct Domain {
    rep: Rep,
}

impl Domain {
    /// The interval domain `lo..=hi`. An inverted pair yields the empty domain.
    pub fn interval(lo: i32, hi: i32) -> Self {
        if lo > hi {
            return Domain::empty();
        }
        // Offset arithmetic is i64 throughout: `hi - lo` overflows i32 for
        // wide domains (and wrapping tricks mis-classify extreme bounds).
        if hi as i64 - (lo as i64) < BITSET_SPAN {
            Domain {
                rep: Rep::Bits {
                    base: lo,
                    bits: mask_le(hi as i64 - lo as i64),
                },
            }
        } else {
            Domain {
                rep: Rep::Ivs {
                    ivs: vec![(lo, hi)],
                    pinned: false,
                },
            }
        }
    }

    /// Singleton domain `{v}`.
    pub fn singleton(v: i32) -> Self {
        Domain {
            rep: Rep::Bits { base: v, bits: 1 },
        }
    }

    /// The empty domain.
    pub fn empty() -> Self {
        Domain {
            rep: Rep::Ivs {
                ivs: Vec::new(),
                pinned: false,
            },
        }
    }

    /// Build a domain from an arbitrary iterator of values.
    pub fn from_values<I: IntoIterator<Item = i32>>(vals: I) -> Self {
        let mut vs: Vec<i32> = vals.into_iter().collect();
        vs.sort_unstable();
        vs.dedup();
        let mut ivs: Vec<(i32, i32)> = Vec::new();
        for v in vs {
            match ivs.last_mut() {
                // Adjacency in i64: `*hi + 1` would overflow when the
                // running interval already ends at i32::MAX.
                Some((_, hi)) if *hi as i64 + 1 == v as i64 => *hi = v,
                _ => ivs.push((v, v)),
            }
        }
        let mut d = Domain {
            rep: Rep::Ivs { ivs, pinned: false },
        };
        d.maybe_promote();
        d
    }

    /// Force (and keep) the interval-list representation: the domain never
    /// promotes to the bitset form again. This is the `--no-bitset` A/B
    /// baseline; behaviour is otherwise identical.
    pub fn pin(&mut self) {
        let ivs = match &self.rep {
            Rep::Bits { .. } => self.intervals().collect(),
            Rep::Ivs { ivs, .. } => ivs.clone(),
        };
        self.rep = Rep::Ivs { ivs, pinned: true };
    }

    /// True if the domain currently uses the bitset representation.
    pub fn is_bitset(&self) -> bool {
        matches!(self.rep, Rep::Bits { .. })
    }

    /// Promote an unpinned interval list whose span now fits
    /// [`BITSET_SPAN`] values. The new base is the current minimum.
    #[inline]
    fn maybe_promote(&mut self) {
        if let Rep::Ivs { ivs, pinned: false } = &self.rep {
            let (Some(&(lo, _)), Some(&(_, hi))) = (ivs.first(), ivs.last()) else {
                return;
            };
            if hi as i64 - lo as i64 >= BITSET_SPAN {
                return;
            }
            let mut bits: u128 = 0;
            for &(l, h) in ivs {
                bits |= mask_ge(l as i64 - lo as i64) & mask_le(h as i64 - lo as i64);
            }
            self.rep = Rep::Bits { base: lo, bits };
        }
    }

    /// True if no value remains.
    pub fn is_empty(&self) -> bool {
        match &self.rep {
            Rep::Bits { bits, .. } => *bits == 0,
            Rep::Ivs { ivs, .. } => ivs.is_empty(),
        }
    }

    /// True if exactly one value remains.
    pub fn is_fixed(&self) -> bool {
        match &self.rep {
            Rep::Bits { bits, .. } => bits.count_ones() == 1,
            Rep::Ivs { ivs, .. } => ivs.len() == 1 && ivs[0].0 == ivs[0].1,
        }
    }

    /// Smallest value. Panics on an empty domain.
    pub fn min(&self) -> i32 {
        match &self.rep {
            Rep::Bits { base, bits } => {
                assert!(*bits != 0, "min() on empty domain");
                (*base as i64 + bits.trailing_zeros() as i64) as i32
            }
            Rep::Ivs { ivs, .. } => ivs[0].0,
        }
    }

    /// Largest value. Panics on an empty domain.
    pub fn max(&self) -> i32 {
        match &self.rep {
            Rep::Bits { base, bits } => {
                assert!(*bits != 0, "max() on empty domain");
                (*base as i64 + 127 - bits.leading_zeros() as i64) as i32
            }
            Rep::Ivs { ivs, .. } => ivs[ivs.len() - 1].1,
        }
    }

    /// The single remaining value, if fixed.
    pub fn value(&self) -> Option<i32> {
        if self.is_fixed() {
            Some(self.min())
        } else {
            None
        }
    }

    /// Number of values in the domain.
    pub fn size(&self) -> u64 {
        match &self.rep {
            Rep::Bits { bits, .. } => bits.count_ones() as u64,
            Rep::Ivs { ivs, .. } => ivs
                .iter()
                .map(|&(l, h)| (h as i64 - l as i64 + 1) as u64)
                .sum(),
        }
    }

    /// Number of maximal intervals (for diagnostics).
    pub fn interval_count(&self) -> usize {
        match &self.rep {
            Rep::Bits { bits, .. } => {
                // A run starts at every set bit whose predecessor is clear.
                (bits & !(bits << 1)).count_ones() as usize
            }
            Rep::Ivs { ivs, .. } => ivs.len(),
        }
    }

    /// Membership test: O(1) on a bitset, O(log k) on an interval list.
    pub fn contains(&self, v: i32) -> bool {
        match &self.rep {
            Rep::Bits { base, bits } => {
                let o = v as i64 - *base as i64;
                // Casting a negative offset to u64 makes it huge, so one
                // unsigned compare rejects both out-of-range directions.
                (o as u64) < 128 && (bits >> o) & 1 == 1
            }
            Rep::Ivs { ivs, .. } => ivs
                .binary_search_by(|&(l, h)| {
                    if v < l {
                        std::cmp::Ordering::Greater
                    } else if v > h {
                        std::cmp::Ordering::Less
                    } else {
                        std::cmp::Ordering::Equal
                    }
                })
                .is_ok(),
        }
    }

    /// Remove all values `< lo`. Returns true if the domain changed.
    pub fn remove_below(&mut self, lo: i32) -> bool {
        if self.is_empty() || lo <= self.min() {
            return false;
        }
        match &mut self.rep {
            Rep::Bits { base, bits } => {
                *bits &= mask_ge(lo as i64 - *base as i64);
            }
            Rep::Ivs { ivs, .. } => {
                let mut first = 0;
                while first < ivs.len() && ivs[first].1 < lo {
                    first += 1;
                }
                ivs.drain(..first);
                if let Some(iv) = ivs.first_mut() {
                    if iv.0 < lo {
                        iv.0 = lo;
                    }
                }
                self.maybe_promote();
            }
        }
        true
    }

    /// Remove all values `> hi`. Returns true if the domain changed.
    pub fn remove_above(&mut self, hi: i32) -> bool {
        if self.is_empty() || hi >= self.max() {
            return false;
        }
        match &mut self.rep {
            Rep::Bits { base, bits } => {
                *bits &= mask_le(hi as i64 - *base as i64);
            }
            Rep::Ivs { ivs, .. } => {
                let mut last = ivs.len();
                while last > 0 && ivs[last - 1].0 > hi {
                    last -= 1;
                }
                ivs.truncate(last);
                if let Some(iv) = ivs.last_mut() {
                    if iv.1 > hi {
                        iv.1 = hi;
                    }
                }
                self.maybe_promote();
            }
        }
        true
    }

    /// Remove a single value. Returns true if the domain changed.
    pub fn remove_value(&mut self, v: i32) -> bool {
        match &mut self.rep {
            Rep::Bits { base, bits } => {
                let o = v as i64 - *base as i64;
                if (o as u64) >= 128 {
                    return false;
                }
                let bit = 1u128 << o;
                let had = *bits & bit != 0;
                *bits &= !bit;
                had
            }
            Rep::Ivs { ivs, .. } => {
                let idx = ivs.binary_search_by(|&(l, h)| {
                    if v < l {
                        std::cmp::Ordering::Greater
                    } else if v > h {
                        std::cmp::Ordering::Less
                    } else {
                        std::cmp::Ordering::Equal
                    }
                });
                let Ok(i) = idx else { return false };
                let (l, h) = ivs[i];
                if l == h {
                    ivs.remove(i);
                } else if v == l {
                    ivs[i].0 = l + 1;
                } else if v == h {
                    ivs[i].1 = h - 1;
                } else {
                    ivs[i].1 = v - 1;
                    ivs.insert(i + 1, (v + 1, h));
                }
                true
            }
        }
    }

    /// Keep only values in `[lo, hi]`. Returns true if the domain changed.
    pub fn restrict_to_interval(&mut self, lo: i32, hi: i32) -> bool {
        let a = self.remove_below(lo);
        let b = self.remove_above(hi);
        a || b
    }

    /// Fix the domain to `{v}`. Returns true if the domain changed; the
    /// domain becomes empty if `v` was not a member.
    pub fn fix(&mut self, v: i32) -> bool {
        if self.value() == Some(v) {
            return false;
        }
        let member = self.contains(v);
        match &mut self.rep {
            Rep::Bits { base, bits } => {
                *bits = if member {
                    1u128 << (v as i64 - *base as i64)
                } else {
                    0
                };
            }
            Rep::Ivs { ivs, pinned } => {
                ivs.clear();
                if member {
                    ivs.push((v, v));
                    if !*pinned {
                        self.rep = Rep::Bits { base: v, bits: 1 };
                    }
                }
            }
        }
        true
    }

    /// Membership mask of `self` over the 128-value window starting at
    /// `base` (bit `i` ⇔ `base + i` is a member).
    fn mask_at(&self, base: i32) -> u128 {
        match &self.rep {
            Rep::Bits { base: ob, bits } => {
                let d = *ob as i64 - base as i64;
                if d >= 128 || d <= -128 {
                    0
                } else if d >= 0 {
                    bits << d
                } else {
                    bits >> -d
                }
            }
            Rep::Ivs { ivs, .. } => {
                let mut m: u128 = 0;
                for &(l, h) in ivs {
                    m |= mask_ge(l as i64 - base as i64) & mask_le(h as i64 - base as i64);
                }
                m
            }
        }
    }

    /// Intersect with another domain in place. Returns true if changed.
    pub fn intersect(&mut self, other: &Domain) -> bool {
        if self.is_empty() {
            return false;
        }
        match &mut self.rep {
            Rep::Bits { base, bits } => {
                // Word AND against `other`'s membership over our window —
                // values outside the window are not in `self` anyway.
                let new = *bits & other.mask_at(*base);
                let changed = new != *bits;
                *bits = new;
                changed
            }
            Rep::Ivs { ivs, .. } => {
                let mut out: Vec<(i32, i32)> = Vec::with_capacity(ivs.len());
                let mut oruns = other.intervals().peekable();
                let mut i = 0;
                while i < ivs.len() {
                    let Some(&(bl, bh)) = oruns.peek() else { break };
                    let (al, ah) = ivs[i];
                    let lo = al.max(bl);
                    let hi = ah.min(bh);
                    if lo <= hi {
                        out.push((lo, hi));
                    }
                    if ah < bh {
                        i += 1;
                    } else {
                        oruns.next();
                    }
                }
                if out == *ivs {
                    false
                } else {
                    *ivs = out;
                    self.maybe_promote();
                    true
                }
            }
        }
    }

    /// True if the two domains share no value.
    pub fn disjoint(&self, other: &Domain) -> bool {
        match (&self.rep, &other.rep) {
            (Rep::Bits { base, bits }, _) => bits & other.mask_at(*base) == 0,
            (_, Rep::Bits { base, bits }) => bits & self.mask_at(*base) == 0,
            (Rep::Ivs { ivs: a, .. }, Rep::Ivs { ivs: b, .. }) => {
                let (mut i, mut j) = (0, 0);
                while i < a.len() && j < b.len() {
                    let (al, ah) = a[i];
                    let (bl, bh) = b[j];
                    if al.max(bl) <= ah.min(bh) {
                        return false;
                    }
                    if ah < bh {
                        i += 1;
                    } else {
                        j += 1;
                    }
                }
                true
            }
        }
    }

    /// Iterate over the remaining values in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = i32> + '_ {
        self.intervals().flat_map(|(l, h)| l..=h)
    }

    /// Iterate over the maximal intervals in increasing order.
    pub fn intervals(&self) -> Runs<'_> {
        match &self.rep {
            Rep::Bits { base, bits } => Runs::Bits {
                base: *base,
                bits: *bits,
            },
            Rep::Ivs { ivs, .. } => Runs::Ivs(ivs.iter()),
        }
    }

    /// Smallest member `≥ v`, if any.
    pub fn next_member(&self, v: i32) -> Option<i32> {
        match &self.rep {
            Rep::Bits { base, bits } => {
                let rest = bits & mask_ge(v as i64 - *base as i64);
                if rest == 0 {
                    None
                } else {
                    Some((*base as i64 + rest.trailing_zeros() as i64) as i32)
                }
            }
            Rep::Ivs { ivs, .. } => {
                for &(l, h) in ivs {
                    if v <= h {
                        return Some(v.max(l));
                    }
                }
                None
            }
        }
    }

    /// The `n`-th smallest member (0-based). `n` must be `< size()`.
    /// Used by restart-diversified branching, which picks a
    /// deterministic pseudo-random rank instead of the minimum.
    pub fn nth_member(&self, n: u64) -> i32 {
        let mut left = n;
        for (l, h) in self.intervals() {
            let run = (h as i64 - l as i64 + 1) as u64;
            if left < run {
                return (l as i64 + left as i64) as i32;
            }
            left -= run;
        }
        panic!(
            "nth_member({n}) out of range for domain of size {}",
            self.size()
        )
    }

    /// The midpoint used by domain-splitting branchers: `(min+max)/2`
    /// rounded toward `min` (always a legal split point: `min ≤ mid < max`
    /// whenever the domain is not fixed).
    pub fn split_point(&self) -> i32 {
        let lo = self.min() as i64;
        let hi = self.max() as i64;
        (lo + (hi - lo) / 2) as i32
    }
}

/// Iterator over a domain's maximal intervals, representation-agnostic
/// (returned by [`Domain::intervals`]).
pub enum Runs<'a> {
    #[doc(hidden)]
    Bits { base: i32, bits: u128 },
    #[doc(hidden)]
    Ivs(std::slice::Iter<'a, (i32, i32)>),
}

impl Iterator for Runs<'_> {
    type Item = (i32, i32);

    fn next(&mut self) -> Option<(i32, i32)> {
        match self {
            Runs::Bits { base, bits } => {
                if *bits == 0 {
                    return None;
                }
                let start = bits.trailing_zeros();
                // Length of the run of consecutive set bits from `start`.
                let len = (!(*bits >> start)).trailing_zeros();
                let lo = *base as i64 + start as i64;
                let hi = lo + len as i64 - 1;
                *bits &= mask_ge(start as i64 + len as i64);
                Some((lo as i32, hi as i32))
            }
            Runs::Ivs(it) => it.next().copied(),
        }
    }
}

/// Equality is *set* equality, independent of representation: a bitset
/// and an interval list holding the same values compare equal (and two
/// bitsets with different anchors do too).
impl PartialEq for Domain {
    fn eq(&self, other: &Self) -> bool {
        match (&self.rep, &other.rep) {
            (Rep::Bits { base: b1, bits: x1 }, Rep::Bits { base: b2, bits: x2 }) if b1 == b2 => {
                x1 == x2
            }
            _ => self.intervals().eq(other.intervals()),
        }
    }
}

impl Eq for Domain {}

impl fmt::Debug for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (l, h)) in self.intervals().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if l == h {
                write!(f, "{l}")?;
            } else {
                write!(f, "{l}..{h}")?;
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_basics() {
        let d = Domain::interval(1, 7);
        assert_eq!(d.min(), 1);
        assert_eq!(d.max(), 7);
        assert_eq!(d.size(), 7);
        assert!(!d.is_fixed());
        assert!(d.contains(4));
        assert!(!d.contains(0));
        assert!(!d.contains(8));
    }

    #[test]
    fn inverted_interval_is_empty() {
        assert!(Domain::interval(5, 3).is_empty());
    }

    #[test]
    fn singleton_is_fixed() {
        let d = Domain::singleton(42);
        assert!(d.is_fixed());
        assert_eq!(d.value(), Some(42));
        assert_eq!(d.size(), 1);
    }

    #[test]
    fn from_values_normalizes() {
        let d = Domain::from_values([5, 1, 2, 3, 9, 2, 10]);
        assert_eq!(d.interval_count(), 3); // {1..3, 5, 9..10}
        assert_eq!(d.size(), 6);
        assert!(d.contains(5));
        assert!(!d.contains(4));
    }

    #[test]
    fn remove_value_splits_interval() {
        let mut d = Domain::interval(0, 10);
        assert!(d.remove_value(5));
        assert_eq!(d.interval_count(), 2);
        assert_eq!(d.size(), 10);
        assert!(!d.contains(5));
        assert!(!d.remove_value(5)); // idempotent
    }

    #[test]
    fn remove_value_at_edges() {
        let mut d = Domain::interval(0, 3);
        assert!(d.remove_value(0));
        assert_eq!(d.min(), 1);
        assert!(d.remove_value(3));
        assert_eq!(d.max(), 2);
    }

    #[test]
    fn remove_singleton_value_empties() {
        let mut d = Domain::singleton(7);
        assert!(d.remove_value(7));
        assert!(d.is_empty());
    }

    #[test]
    fn remove_below_above() {
        let mut d = Domain::from_values([0, 1, 2, 5, 6, 9]);
        assert!(d.remove_below(2));
        assert_eq!(d.min(), 2);
        assert!(d.remove_above(6));
        assert_eq!(d.max(), 6);
        assert_eq!(d.size(), 3); // {2, 5, 6}
        assert!(!d.remove_below(1)); // no-op reports false
        assert!(!d.remove_above(10));
    }

    #[test]
    fn remove_below_skipping_whole_intervals() {
        let mut d = Domain::from_values([0, 1, 5, 6, 10]);
        assert!(d.remove_below(7));
        assert_eq!(d.min(), 10);
        assert_eq!(d.size(), 1);
    }

    #[test]
    fn fix_member_and_nonmember() {
        let mut d = Domain::interval(0, 9);
        assert!(d.fix(4));
        assert_eq!(d.value(), Some(4));
        let mut d2 = Domain::from_values([1, 3]);
        assert!(d2.fix(2));
        assert!(d2.is_empty());
    }

    #[test]
    fn intersect_interval_lists() {
        let mut a = Domain::from_values([0, 1, 2, 5, 6, 9, 10]);
        let b = Domain::from_values([2, 3, 6, 7, 10, 11]);
        assert!(a.intersect(&b));
        let got: Vec<i32> = a.iter().collect();
        assert_eq!(got, vec![2, 6, 10]);
    }

    #[test]
    fn intersect_no_change_reports_false() {
        let mut a = Domain::interval(3, 5);
        let b = Domain::interval(0, 10);
        assert!(!a.intersect(&b));
    }

    #[test]
    fn disjointness() {
        let a = Domain::from_values([1, 2, 8]);
        let b = Domain::from_values([3, 4, 7]);
        assert!(a.disjoint(&b));
        let c = Domain::from_values([8, 9]);
        assert!(!a.disjoint(&c));
    }

    #[test]
    fn next_member_walks_gaps() {
        let d = Domain::from_values([1, 2, 7, 8]);
        assert_eq!(d.next_member(0), Some(1));
        assert_eq!(d.next_member(3), Some(7));
        assert_eq!(d.next_member(8), Some(8));
        assert_eq!(d.next_member(9), None);
    }

    #[test]
    fn split_point_never_equals_max_on_wide_domains() {
        let d = Domain::interval(3, 4);
        assert_eq!(d.split_point(), 3);
        let d2 = Domain::interval(i32::MIN / 2, i32::MAX / 2);
        let m = d2.split_point();
        assert!(m >= d2.min() && m < d2.max());
    }

    /// Every operation at the extreme representable bounds — the full
    /// `[i32::MIN, i32::MAX]` domain is what an unbounded variable gets,
    /// so none of this may overflow (debug builds would panic).
    #[test]
    fn full_range_interval_edge_bounds() {
        let d = Domain::interval(i32::MIN, i32::MAX);
        assert_eq!(d.size(), 1u64 << 32);
        assert_eq!(d.min(), i32::MIN);
        assert_eq!(d.max(), i32::MAX);
        assert!(d.contains(i32::MIN));
        assert!(d.contains(i32::MAX));
        assert!(d.contains(0));
        let m = d.split_point();
        assert!(m >= d.min() && m < d.max());
        assert_eq!(d.next_member(i32::MAX), Some(i32::MAX));

        let mut lo = d.clone();
        assert!(lo.remove_value(i32::MIN));
        assert_eq!(lo.min(), i32::MIN + 1);
        let mut hi = d.clone();
        assert!(hi.remove_value(i32::MAX));
        assert_eq!(hi.max(), i32::MAX - 1);

        let mut mid = d.clone();
        assert!(mid.remove_value(0));
        assert_eq!(mid.interval_count(), 2);
        assert_eq!(mid.size(), (1u64 << 32) - 1);

        let mut f = d.clone();
        assert!(f.fix(i32::MAX));
        assert_eq!(f.value(), Some(i32::MAX));

        let mut cut = d.clone();
        assert!(cut.remove_below(i32::MAX));
        assert_eq!(cut.size(), 1);
        let mut cut2 = d.clone();
        assert!(cut2.remove_above(i32::MIN));
        assert_eq!(cut2.size(), 1);
    }

    #[test]
    fn from_values_at_extreme_bounds() {
        // Adjacent pair ending exactly at i32::MAX: the gap-merge probe
        // `hi + 1` must not overflow.
        let d = Domain::from_values([i32::MAX - 1, i32::MAX]);
        assert_eq!(d.interval_count(), 1);
        assert_eq!(d.size(), 2);

        let d = Domain::from_values([i32::MIN, i32::MIN + 1, i32::MAX]);
        assert_eq!(d.interval_count(), 2);
        assert!(d.contains(i32::MIN));
        assert!(d.contains(i32::MAX));
        assert!(!d.contains(0));

        let singleton = Domain::from_values([i32::MAX]);
        assert!(singleton.is_fixed());
        assert_eq!(singleton.value(), Some(i32::MAX));
    }

    #[test]
    fn extreme_domains_intersect_and_disjoint() {
        let mut a = Domain::interval(i32::MIN, i32::MAX);
        let b = Domain::from_values([i32::MIN, i32::MAX]);
        assert!(a.intersect(&b));
        assert_eq!(a.size(), 2);
        let lo = Domain::singleton(i32::MIN);
        let hi = Domain::singleton(i32::MAX);
        assert!(lo.disjoint(&hi));
        assert!(!a.disjoint(&lo));
    }

    #[test]
    fn iter_matches_contains() {
        let d = Domain::from_values([-3, -1, 0, 4]);
        for v in -5..6 {
            assert_eq!(d.contains(v), d.iter().any(|x| x == v), "v={v}");
        }
    }

    // ---- hybrid-representation specifics ---------------------------------

    #[test]
    fn small_domains_use_the_bitset() {
        assert!(Domain::interval(0, 127).is_bitset());
        assert!(Domain::singleton(i32::MAX).is_bitset());
        assert!(Domain::from_values([-3, 0, 99]).is_bitset());
        assert!(!Domain::interval(0, 128).is_bitset());
        assert!(!Domain::interval(i32::MIN, i32::MAX).is_bitset());
    }

    #[test]
    fn wide_domain_promotes_on_narrowing() {
        let mut d = Domain::interval(0, 1000);
        assert!(!d.is_bitset());
        assert!(d.remove_above(500));
        assert!(!d.is_bitset()); // span 501: still wide
        assert!(d.remove_below(400));
        assert!(d.is_bitset()); // span 101: promoted
        assert_eq!(d.min(), 400);
        assert_eq!(d.max(), 500);
        assert_eq!(d.size(), 101);
    }

    #[test]
    fn pinned_domain_never_promotes() {
        let mut d = Domain::interval(0, 1000);
        d.pin();
        d.remove_above(10);
        assert!(!d.is_bitset());
        d.fix(3);
        assert!(!d.is_bitset());
        assert_eq!(d.value(), Some(3));
        // Pinning survives cloning (the trail restores pinned domains).
        let mut c = d.clone();
        c.remove_value(3);
        assert!(c.is_empty());
        assert!(!c.is_bitset());
    }

    #[test]
    fn equality_is_representation_independent() {
        let mut pinned = Domain::interval(5, 40);
        pinned.pin();
        let bits = Domain::interval(5, 40);
        assert!(bits.is_bitset() && !pinned.is_bitset());
        assert_eq!(pinned, bits);
        assert_eq!(bits, pinned);

        // Same set, different anchors.
        let mut a = Domain::interval(0, 100);
        a.remove_below(50);
        let b = Domain::interval(50, 100);
        assert_eq!(a, b);

        // Empty domains compare equal across representations.
        let mut eb = Domain::singleton(3);
        eb.remove_value(3);
        assert_eq!(eb, Domain::empty());
    }

    #[test]
    fn bitset_ops_match_interval_ops_exhaustively() {
        // One shared script of mutations applied to a bitset domain and a
        // pinned interval domain; every observation must agree after every
        // step. (The broad randomized battery lives in tests/.)
        let script: &[fn(&mut Domain) -> bool] = &[
            |d| d.remove_value(7),
            |d| d.remove_below(3),
            |d| d.remove_above(90),
            |d| d.remove_value(3),
            |d| d.intersect(&Domain::from_values((0..100).filter(|v| v % 3 != 1))),
            |d| d.restrict_to_interval(10, 50),
            |d| d.remove_value(30),
            |d| d.fix(33),
        ];
        let mut b = Domain::interval(0, 100);
        let mut p = Domain::interval(0, 100);
        p.pin();
        assert!(b.is_bitset());
        for (i, step) in script.iter().enumerate() {
            let cb = step(&mut b);
            let cp = step(&mut p);
            assert_eq!(cb, cp, "step {i}: changed flags differ");
            assert_eq!(b, p, "step {i}: sets differ");
            assert_eq!(b.size(), p.size(), "step {i}");
            assert_eq!(b.interval_count(), p.interval_count(), "step {i}");
            assert_eq!(
                b.intervals().collect::<Vec<_>>(),
                p.intervals().collect::<Vec<_>>(),
                "step {i}"
            );
            if !b.is_empty() {
                assert_eq!(b.min(), p.min(), "step {i}");
                assert_eq!(b.max(), p.max(), "step {i}");
                assert_eq!(b.split_point(), p.split_point(), "step {i}");
            }
            for v in -2..103 {
                assert_eq!(b.contains(v), p.contains(v), "step {i}, v={v}");
                assert_eq!(b.next_member(v), p.next_member(v), "step {i}, v={v}");
            }
        }
    }

    #[test]
    fn bitset_near_extreme_bounds() {
        // A bitset anchored at i32::MAX - 127: offsets never overflow.
        let mut d = Domain::interval(i32::MAX - 127, i32::MAX);
        assert!(d.is_bitset());
        assert_eq!(d.size(), 128);
        assert!(d.contains(i32::MAX));
        assert!(!d.contains(i32::MIN)); // offset wraps far out of range
        assert!(d.remove_value(i32::MAX));
        assert_eq!(d.max(), i32::MAX - 1);
        assert!(d.remove_below(i32::MAX - 3));
        assert_eq!(d.size(), 3);
        assert_eq!(
            d.iter().collect::<Vec<_>>(),
            vec![i32::MAX - 3, i32::MAX - 2, i32::MAX - 1]
        );

        // And anchored at i32::MIN.
        let mut lo = Domain::interval(i32::MIN, i32::MIN + 127);
        assert!(lo.is_bitset());
        assert!(!lo.contains(i32::MAX));
        assert!(lo.remove_above(i32::MIN + 1));
        assert_eq!(lo.size(), 2);
        assert_eq!(lo.min(), i32::MIN);
    }

    #[test]
    fn bitset_intersect_across_anchors() {
        let mut a = Domain::interval(0, 100); // base 0
        let mut b = Domain::interval(0, 160);
        b.remove_below(60); // promotes with base 60
        assert!(a.is_bitset() && b.is_bitset());
        assert!(a.intersect(&b));
        assert_eq!(a.min(), 60);
        assert_eq!(a.max(), 100);
        assert_eq!(a.size(), 41);

        // Disjoint windows AND to empty.
        let mut c = Domain::interval(0, 50);
        let far = Domain::interval(1000, 1050);
        assert!(c.intersect(&far));
        assert!(c.is_empty());
        assert!(Domain::interval(0, 50).disjoint(&far));
    }

    #[test]
    fn bitset_intersect_with_wide_interval_list() {
        let mut a = Domain::interval(10, 90);
        let wide = Domain::from_values([0, 11, 12, 500_000, 1_000_000]);
        assert!(!wide.is_bitset());
        assert!(a.intersect(&wide));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![11, 12]);
    }
}
