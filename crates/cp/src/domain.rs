//! Finite integer domains represented as sorted, disjoint interval lists.
//!
//! A [`Domain`] is the set of values a finite-domain variable may still
//! take. The representation is a sorted `Vec` of closed, pairwise-disjoint,
//! non-adjacent intervals `[lo, hi]`. All mutating operations preserve this
//! normal form. Most domains in the scheduling model are a single interval,
//! so the common case allocates one element and all bound operations are
//! O(1); value removal in the middle is O(k) in the number of intervals.

use std::fmt;
use std::ops::{BitOr, BitOrAssign};

/// Classification of a domain mutation, used by the engine to wake only
/// the propagators whose filtering could be enabled by the change.
///
/// Events are a bitmask because one mutation can have several effects at
/// once: fixing `x ∈ [0,9]` to `4` raises the minimum, lowers the maximum
/// and assigns the variable, so it fires `MIN | MAX | FIX`. The store
/// guarantees that every *actual* change fires at least one bit (an
/// interior removal that moves no bound fires `HOLE`), so a propagator
/// subscribed with [`DomainEvent::ANY`] sees every mutation.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct DomainEvent(u8);

impl DomainEvent {
    /// No effect (never delivered; useful as an accumulator seed).
    pub const NONE: DomainEvent = DomainEvent(0);
    /// The minimum increased.
    pub const MIN: DomainEvent = DomainEvent(1);
    /// The maximum decreased.
    pub const MAX: DomainEvent = DomainEvent(2);
    /// The variable became fixed (singleton domain).
    pub const FIX: DomainEvent = DomainEvent(4);
    /// An interior value was removed without moving either bound.
    pub const HOLE: DomainEvent = DomainEvent(8);
    /// Either bound moved.
    pub const BOUNDS: DomainEvent = DomainEvent(1 | 2);
    /// Any change at all.
    pub const ANY: DomainEvent = DomainEvent(1 | 2 | 4 | 8);

    /// True if no bit is set.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// True if this event shares at least one bit with `mask`.
    #[inline]
    pub fn intersects(self, mask: DomainEvent) -> bool {
        self.0 & mask.0 != 0
    }

    /// True if every bit of `other` is set in `self`.
    #[inline]
    pub fn contains(self, other: DomainEvent) -> bool {
        self.0 & other.0 == other.0
    }
}

impl BitOr for DomainEvent {
    type Output = DomainEvent;
    #[inline]
    fn bitor(self, rhs: DomainEvent) -> DomainEvent {
        DomainEvent(self.0 | rhs.0)
    }
}

impl BitOrAssign for DomainEvent {
    #[inline]
    fn bitor_assign(&mut self, rhs: DomainEvent) {
        self.0 |= rhs.0;
    }
}

impl fmt::Debug for DomainEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        let mut put = |f: &mut fmt::Formatter<'_>, s: &str| -> fmt::Result {
            if !first {
                write!(f, "|")?;
            }
            first = false;
            write!(f, "{s}")
        };
        if self.is_empty() {
            return write!(f, "NONE");
        }
        if self.contains(DomainEvent::MIN) {
            put(f, "MIN")?;
        }
        if self.contains(DomainEvent::MAX) {
            put(f, "MAX")?;
        }
        if self.contains(DomainEvent::FIX) {
            put(f, "FIX")?;
        }
        if self.contains(DomainEvent::HOLE) {
            put(f, "HOLE")?;
        }
        Ok(())
    }
}

/// A finite set of `i32` values stored as disjoint closed intervals.
#[derive(Clone, PartialEq, Eq)]
pub struct Domain {
    /// Sorted, disjoint, non-adjacent closed intervals. Empty ⇔ domain empty.
    ivs: Vec<(i32, i32)>,
}

impl Domain {
    /// The interval domain `lo..=hi`. An inverted pair yields the empty domain.
    pub fn interval(lo: i32, hi: i32) -> Self {
        if lo > hi {
            Domain { ivs: Vec::new() }
        } else {
            Domain {
                ivs: vec![(lo, hi)],
            }
        }
    }

    /// Singleton domain `{v}`.
    pub fn singleton(v: i32) -> Self {
        Domain { ivs: vec![(v, v)] }
    }

    /// The empty domain.
    pub fn empty() -> Self {
        Domain { ivs: Vec::new() }
    }

    /// Build a domain from an arbitrary iterator of values.
    pub fn from_values<I: IntoIterator<Item = i32>>(vals: I) -> Self {
        let mut vs: Vec<i32> = vals.into_iter().collect();
        vs.sort_unstable();
        vs.dedup();
        let mut ivs: Vec<(i32, i32)> = Vec::new();
        for v in vs {
            match ivs.last_mut() {
                // Adjacency in i64: `*hi + 1` would overflow when the
                // running interval already ends at i32::MAX.
                Some((_, hi)) if *hi as i64 + 1 == v as i64 => *hi = v,
                _ => ivs.push((v, v)),
            }
        }
        Domain { ivs }
    }

    /// True if no value remains.
    pub fn is_empty(&self) -> bool {
        self.ivs.is_empty()
    }

    /// True if exactly one value remains.
    pub fn is_fixed(&self) -> bool {
        self.ivs.len() == 1 && self.ivs[0].0 == self.ivs[0].1
    }

    /// Smallest value. Panics on an empty domain.
    pub fn min(&self) -> i32 {
        self.ivs[0].0
    }

    /// Largest value. Panics on an empty domain.
    pub fn max(&self) -> i32 {
        self.ivs[self.ivs.len() - 1].1
    }

    /// The single remaining value, if fixed.
    pub fn value(&self) -> Option<i32> {
        if self.is_fixed() {
            Some(self.ivs[0].0)
        } else {
            None
        }
    }

    /// Number of values in the domain.
    pub fn size(&self) -> u64 {
        self.ivs
            .iter()
            .map(|&(l, h)| (h as i64 - l as i64 + 1) as u64)
            .sum()
    }

    /// Number of maximal intervals (for diagnostics).
    pub fn interval_count(&self) -> usize {
        self.ivs.len()
    }

    /// Membership test, O(log k).
    pub fn contains(&self, v: i32) -> bool {
        self.ivs
            .binary_search_by(|&(l, h)| {
                if v < l {
                    std::cmp::Ordering::Greater
                } else if v > h {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Remove all values `< lo`. Returns true if the domain changed.
    pub fn remove_below(&mut self, lo: i32) -> bool {
        if self.is_empty() || lo <= self.min() {
            return false;
        }
        let mut first = 0;
        while first < self.ivs.len() && self.ivs[first].1 < lo {
            first += 1;
        }
        self.ivs.drain(..first);
        if let Some(iv) = self.ivs.first_mut() {
            if iv.0 < lo {
                iv.0 = lo;
            }
        }
        true
    }

    /// Remove all values `> hi`. Returns true if the domain changed.
    pub fn remove_above(&mut self, hi: i32) -> bool {
        if self.is_empty() || hi >= self.max() {
            return false;
        }
        let mut last = self.ivs.len();
        while last > 0 && self.ivs[last - 1].0 > hi {
            last -= 1;
        }
        self.ivs.truncate(last);
        if let Some(iv) = self.ivs.last_mut() {
            if iv.1 > hi {
                iv.1 = hi;
            }
        }
        true
    }

    /// Remove a single value. Returns true if the domain changed.
    pub fn remove_value(&mut self, v: i32) -> bool {
        let idx = self.ivs.binary_search_by(|&(l, h)| {
            if v < l {
                std::cmp::Ordering::Greater
            } else if v > h {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Equal
            }
        });
        let Ok(i) = idx else { return false };
        let (l, h) = self.ivs[i];
        if l == h {
            self.ivs.remove(i);
        } else if v == l {
            self.ivs[i].0 = l + 1;
        } else if v == h {
            self.ivs[i].1 = h - 1;
        } else {
            self.ivs[i].1 = v - 1;
            self.ivs.insert(i + 1, (v + 1, h));
        }
        true
    }

    /// Keep only values in `[lo, hi]`. Returns true if the domain changed.
    pub fn restrict_to_interval(&mut self, lo: i32, hi: i32) -> bool {
        let a = self.remove_below(lo);
        let b = self.remove_above(hi);
        a || b
    }

    /// Fix the domain to `{v}`. Returns true if the domain changed; the
    /// domain becomes empty if `v` was not a member.
    pub fn fix(&mut self, v: i32) -> bool {
        if self.is_fixed() && self.ivs[0].0 == v {
            return false;
        }
        if self.contains(v) {
            self.ivs.clear();
            self.ivs.push((v, v));
        } else {
            self.ivs.clear();
        }
        true
    }

    /// Intersect with another domain in place. Returns true if changed.
    pub fn intersect(&mut self, other: &Domain) -> bool {
        if self.is_empty() {
            return false;
        }
        let mut out: Vec<(i32, i32)> = Vec::with_capacity(self.ivs.len());
        let (mut i, mut j) = (0, 0);
        while i < self.ivs.len() && j < other.ivs.len() {
            let (al, ah) = self.ivs[i];
            let (bl, bh) = other.ivs[j];
            let lo = al.max(bl);
            let hi = ah.min(bh);
            if lo <= hi {
                out.push((lo, hi));
            }
            if ah < bh {
                i += 1;
            } else {
                j += 1;
            }
        }
        if out == self.ivs {
            false
        } else {
            self.ivs = out;
            true
        }
    }

    /// True if the two domains share no value.
    pub fn disjoint(&self, other: &Domain) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.ivs.len() && j < other.ivs.len() {
            let (al, ah) = self.ivs[i];
            let (bl, bh) = other.ivs[j];
            if al.max(bl) <= ah.min(bh) {
                return false;
            }
            if ah < bh {
                i += 1;
            } else {
                j += 1;
            }
        }
        true
    }

    /// Iterate over the remaining values in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = i32> + '_ {
        self.ivs.iter().flat_map(|&(l, h)| l..=h)
    }

    /// Iterate over the maximal intervals.
    pub fn intervals(&self) -> impl Iterator<Item = (i32, i32)> + '_ {
        self.ivs.iter().copied()
    }

    /// Smallest member `≥ v`, if any.
    pub fn next_member(&self, v: i32) -> Option<i32> {
        for &(l, h) in &self.ivs {
            if v <= h {
                return Some(v.max(l));
            }
        }
        None
    }

    /// The midpoint used by domain-splitting branchers: `(min+max)/2`
    /// rounded toward `min` (always a legal split point: `min ≤ mid < max`
    /// whenever the domain is not fixed).
    pub fn split_point(&self) -> i32 {
        let lo = self.min() as i64;
        let hi = self.max() as i64;
        (lo + (hi - lo) / 2) as i32
    }
}

impl fmt::Debug for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (l, h)) in self.ivs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if l == h {
                write!(f, "{l}")?;
            } else {
                write!(f, "{l}..{h}")?;
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_basics() {
        let d = Domain::interval(1, 7);
        assert_eq!(d.min(), 1);
        assert_eq!(d.max(), 7);
        assert_eq!(d.size(), 7);
        assert!(!d.is_fixed());
        assert!(d.contains(4));
        assert!(!d.contains(0));
        assert!(!d.contains(8));
    }

    #[test]
    fn inverted_interval_is_empty() {
        assert!(Domain::interval(5, 3).is_empty());
    }

    #[test]
    fn singleton_is_fixed() {
        let d = Domain::singleton(42);
        assert!(d.is_fixed());
        assert_eq!(d.value(), Some(42));
        assert_eq!(d.size(), 1);
    }

    #[test]
    fn from_values_normalizes() {
        let d = Domain::from_values([5, 1, 2, 3, 9, 2, 10]);
        assert_eq!(d.interval_count(), 3); // {1..3, 5, 9..10}
        assert_eq!(d.size(), 6);
        assert!(d.contains(5));
        assert!(!d.contains(4));
    }

    #[test]
    fn remove_value_splits_interval() {
        let mut d = Domain::interval(0, 10);
        assert!(d.remove_value(5));
        assert_eq!(d.interval_count(), 2);
        assert_eq!(d.size(), 10);
        assert!(!d.contains(5));
        assert!(!d.remove_value(5)); // idempotent
    }

    #[test]
    fn remove_value_at_edges() {
        let mut d = Domain::interval(0, 3);
        assert!(d.remove_value(0));
        assert_eq!(d.min(), 1);
        assert!(d.remove_value(3));
        assert_eq!(d.max(), 2);
    }

    #[test]
    fn remove_singleton_value_empties() {
        let mut d = Domain::singleton(7);
        assert!(d.remove_value(7));
        assert!(d.is_empty());
    }

    #[test]
    fn remove_below_above() {
        let mut d = Domain::from_values([0, 1, 2, 5, 6, 9]);
        assert!(d.remove_below(2));
        assert_eq!(d.min(), 2);
        assert!(d.remove_above(6));
        assert_eq!(d.max(), 6);
        assert_eq!(d.size(), 3); // {2, 5, 6}
        assert!(!d.remove_below(1)); // no-op reports false
        assert!(!d.remove_above(10));
    }

    #[test]
    fn remove_below_skipping_whole_intervals() {
        let mut d = Domain::from_values([0, 1, 5, 6, 10]);
        assert!(d.remove_below(7));
        assert_eq!(d.min(), 10);
        assert_eq!(d.size(), 1);
    }

    #[test]
    fn fix_member_and_nonmember() {
        let mut d = Domain::interval(0, 9);
        assert!(d.fix(4));
        assert_eq!(d.value(), Some(4));
        let mut d2 = Domain::from_values([1, 3]);
        assert!(d2.fix(2));
        assert!(d2.is_empty());
    }

    #[test]
    fn intersect_interval_lists() {
        let mut a = Domain::from_values([0, 1, 2, 5, 6, 9, 10]);
        let b = Domain::from_values([2, 3, 6, 7, 10, 11]);
        assert!(a.intersect(&b));
        let got: Vec<i32> = a.iter().collect();
        assert_eq!(got, vec![2, 6, 10]);
    }

    #[test]
    fn intersect_no_change_reports_false() {
        let mut a = Domain::interval(3, 5);
        let b = Domain::interval(0, 10);
        assert!(!a.intersect(&b));
    }

    #[test]
    fn disjointness() {
        let a = Domain::from_values([1, 2, 8]);
        let b = Domain::from_values([3, 4, 7]);
        assert!(a.disjoint(&b));
        let c = Domain::from_values([8, 9]);
        assert!(!a.disjoint(&c));
    }

    #[test]
    fn next_member_walks_gaps() {
        let d = Domain::from_values([1, 2, 7, 8]);
        assert_eq!(d.next_member(0), Some(1));
        assert_eq!(d.next_member(3), Some(7));
        assert_eq!(d.next_member(8), Some(8));
        assert_eq!(d.next_member(9), None);
    }

    #[test]
    fn split_point_never_equals_max_on_wide_domains() {
        let d = Domain::interval(3, 4);
        assert_eq!(d.split_point(), 3);
        let d2 = Domain::interval(i32::MIN / 2, i32::MAX / 2);
        let m = d2.split_point();
        assert!(m >= d2.min() && m < d2.max());
    }

    /// Every operation at the extreme representable bounds — the full
    /// `[i32::MIN, i32::MAX]` domain is what an unbounded variable gets,
    /// so none of this may overflow (debug builds would panic).
    #[test]
    fn full_range_interval_edge_bounds() {
        let d = Domain::interval(i32::MIN, i32::MAX);
        assert_eq!(d.size(), 1u64 << 32);
        assert_eq!(d.min(), i32::MIN);
        assert_eq!(d.max(), i32::MAX);
        assert!(d.contains(i32::MIN));
        assert!(d.contains(i32::MAX));
        assert!(d.contains(0));
        let m = d.split_point();
        assert!(m >= d.min() && m < d.max());
        assert_eq!(d.next_member(i32::MAX), Some(i32::MAX));

        let mut lo = d.clone();
        assert!(lo.remove_value(i32::MIN));
        assert_eq!(lo.min(), i32::MIN + 1);
        let mut hi = d.clone();
        assert!(hi.remove_value(i32::MAX));
        assert_eq!(hi.max(), i32::MAX - 1);

        let mut mid = d.clone();
        assert!(mid.remove_value(0));
        assert_eq!(mid.interval_count(), 2);
        assert_eq!(mid.size(), (1u64 << 32) - 1);

        let mut f = d.clone();
        assert!(f.fix(i32::MAX));
        assert_eq!(f.value(), Some(i32::MAX));

        let mut cut = d.clone();
        assert!(cut.remove_below(i32::MAX));
        assert_eq!(cut.size(), 1);
        let mut cut2 = d.clone();
        assert!(cut2.remove_above(i32::MIN));
        assert_eq!(cut2.size(), 1);
    }

    #[test]
    fn from_values_at_extreme_bounds() {
        // Adjacent pair ending exactly at i32::MAX: the gap-merge probe
        // `hi + 1` must not overflow.
        let d = Domain::from_values([i32::MAX - 1, i32::MAX]);
        assert_eq!(d.interval_count(), 1);
        assert_eq!(d.size(), 2);

        let d = Domain::from_values([i32::MIN, i32::MIN + 1, i32::MAX]);
        assert_eq!(d.interval_count(), 2);
        assert!(d.contains(i32::MIN));
        assert!(d.contains(i32::MAX));
        assert!(!d.contains(0));

        let singleton = Domain::from_values([i32::MAX]);
        assert!(singleton.is_fixed());
        assert_eq!(singleton.value(), Some(i32::MAX));
    }

    #[test]
    fn extreme_domains_intersect_and_disjoint() {
        let mut a = Domain::interval(i32::MIN, i32::MAX);
        let b = Domain::from_values([i32::MIN, i32::MAX]);
        assert!(a.intersect(&b));
        assert_eq!(a.size(), 2);
        let lo = Domain::singleton(i32::MIN);
        let hi = Domain::singleton(i32::MAX);
        assert!(lo.disjoint(&hi));
        assert!(!a.disjoint(&lo));
    }

    #[test]
    fn iter_matches_contains() {
        let d = Domain::from_values([-3, -1, 0, 4]);
        for v in -5..6 {
            assert_eq!(d.contains(v), d.iter().any(|x| x == v), "v={v}");
        }
    }
}
