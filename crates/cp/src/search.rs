//! Depth-first search with branch-and-bound minimization, phased
//! variable-selection heuristics (§3.5 of the paper), deadlines and
//! statistics.
//!
//! The paper divides the search into three sequential phases — operation
//! start times, data-node start times, then memory slots — "to start with
//! the most influential decisions and end with the most trivial ones".
//! [`Phase`] captures one such group; the brancher always exhausts earlier
//! phases before touching later ones.

use crate::cancel::CancelToken;
use crate::model::Model;
use crate::props::nogood::{NogoodBase, NogoodProp};
use crate::store::VarId;
use crate::trace::{SearchEvent, TraceHandle};
use std::sync::atomic::{AtomicI32, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Variable-selection heuristic within a phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VarSel {
    /// Pick the first unfixed variable in the given order.
    InputOrder,
    /// Pick the unfixed variable with the smallest domain (first-fail).
    FirstFail,
    /// Pick the unfixed variable with the smallest lower bound — good for
    /// start times, where early decisions propagate the most.
    SmallestMin,
}

/// Value-selection heuristic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ValSel {
    /// Enumerate values in increasing order.
    Min,
    /// Enumerate values in decreasing order.
    Max,
    /// Binary domain splitting at the midpoint (lower half first).
    Split,
}

/// When to abandon a dive and restart the search from the root.
///
/// Budgets are counted in *fails*. Parameters are integers (a percentage
/// instead of a float factor) so the policy is `Copy + Eq` and renders
/// exactly into record/replay config strings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RestartPolicy {
    /// Budgets grow geometrically: `base`, then `× factor_percent / 100`
    /// after each restart. Factors ≤ 100 are treated as 101 so budgets
    /// always grow and a complete search stays complete.
    Geometric { base: u64, factor_percent: u32 },
    /// The Luby sequence (1, 1, 2, 1, 1, 2, 4, …) scaled by `unit` fails.
    Luby { unit: u64 },
}

/// `i`-th element (1-based) of the Luby sequence.
fn luby(mut i: u64) -> u64 {
    loop {
        let mut k = 1u32;
        while (1u64 << k) - 1 < i {
            k += 1;
        }
        if (1u64 << k) - 1 == i {
            return 1u64 << (k - 1);
        }
        i -= (1u64 << (k - 1)) - 1;
    }
}

impl RestartPolicy {
    /// Fail budget for the `i`-th dive (0-based).
    pub fn budget(self, i: u64) -> u64 {
        match self {
            RestartPolicy::Geometric {
                base,
                factor_percent,
            } => {
                let f = factor_percent.max(101) as u128;
                let mut b = base.max(1) as u128;
                for _ in 0..i {
                    // `.max(b + 1)` forces strict growth even where the
                    // integer division rounds the factor away (small
                    // bases), preserving completeness.
                    b = (b * f / 100).max(b + 1);
                    if b > u64::MAX as u128 {
                        return u64::MAX;
                    }
                }
                b as u64
            }
            RestartPolicy::Luby { unit } => unit.max(1).saturating_mul(luby(i + 1)),
        }
    }
}

/// Fail-budgeted restarts with optional nogood recording.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RestartConfig {
    pub policy: RestartPolicy,
    /// Harvest the refuted decision prefixes of each abandoned dive as
    /// nogoods and enforce them with a watched-literal propagator
    /// ([`crate::props::nogood`]) for the remainder of the run, so
    /// restarts never re-explore a refuted subtree.
    pub nogoods: bool,
}

impl Default for RestartConfig {
    fn default() -> Self {
        RestartConfig {
            policy: RestartPolicy::Geometric {
                base: 256,
                factor_percent: 150,
            },
            nogoods: true,
        }
    }
}

impl RestartConfig {
    /// Stable rendering for record/replay config strings — the restart
    /// policy shapes the search tree, so it is part of a trace's
    /// identity (unlike the domain representation, which must not be).
    pub fn config_token(&self) -> String {
        let ng = if self.nogoods { "+ng" } else { "" };
        match self.policy {
            RestartPolicy::Geometric {
                base,
                factor_percent,
            } => format!("geom:{base}:{factor_percent}{ng}"),
            RestartPolicy::Luby { unit } => format!("luby:{unit}{ng}"),
        }
    }

    /// Parse a [`RestartConfig::config_token`] rendering (`geom:B:F`,
    /// `luby:U`, optional `+ng` suffix). Used by the `eitc --restarts`
    /// flag and replay header reconstruction.
    pub fn parse_token(s: &str) -> Option<RestartConfig> {
        let (body, nogoods) = match s.strip_suffix("+ng") {
            Some(b) => (b, true),
            None => (s, false),
        };
        let parts: Vec<&str> = body.split(':').collect();
        let policy = match parts.as_slice() {
            ["geom", b, f] => RestartPolicy::Geometric {
                base: b.parse().ok()?,
                factor_percent: f.parse().ok()?,
            },
            ["luby", u] => RestartPolicy::Luby {
                unit: u.parse().ok()?,
            },
            _ => return None,
        };
        Some(RestartConfig { policy, nogoods })
    }
}

/// One search phase: a variable group plus its heuristics.
#[derive(Clone, Debug)]
pub struct Phase {
    pub vars: Vec<VarId>,
    pub var_sel: VarSel,
    pub val_sel: ValSel,
}

impl Phase {
    pub fn new(vars: Vec<VarId>, var_sel: VarSel, val_sel: ValSel) -> Self {
        Phase {
            vars,
            var_sel,
            val_sel,
        }
    }
}

/// Search-wide configuration.
#[derive(Clone, Debug, Default)]
pub struct SearchConfig {
    pub phases: Vec<Phase>,
    /// Wall-clock budget; `None` = unbounded.
    pub timeout: Option<Duration>,
    /// Explored-node budget; `None` = unbounded.
    pub node_limit: Option<u64>,
    /// Optional cross-thread objective bound for portfolio search: the
    /// search both publishes improvements to and prunes against it.
    pub shared_bound: Option<Arc<AtomicI32>>,
    /// Restart-based branch-and-bound: after each incumbent, tighten the
    /// objective bound *at the root* and re-dive, instead of continuing
    /// chronologically. With strong propagation this avoids thrashing in
    /// the subtree where the incumbent was found.
    pub restart_on_solution: bool,
    /// Fail-budgeted restarts with nogood recording, layered under the
    /// per-incumbent root restarts of `restart_on_solution`. `None` (the
    /// default) disables them. Ignored by [`solve_all`]: re-diving would
    /// enumerate duplicate solutions. Each restart-enabled run posts one
    /// nogood propagator on the model and clears its clause base at run
    /// end (recorded nogoods are only valid under that run's
    /// monotonically tightening bound).
    pub restarts: Option<RestartConfig>,
    /// Event sink for structured search tracing; `None` (the default)
    /// costs one branch per would-be event.
    pub trace: Option<TraceHandle>,
    /// Emit a [`SearchEvent::StateHash`] digest of all domain bounds every
    /// N nodes (at the node's propagation fixpoint, before branching).
    /// `None` (the default) keeps event streams identical to builds
    /// without hashing. The cadence is node-based, not event-based, so a
    /// change that only shifts fail/backtrack bookkeeping still hashes the
    /// same store states.
    pub state_hash_every: Option<u64>,
    /// Cooperative cancellation: checked at every node alongside the
    /// deadline, and periodically inside the propagation fixpoint. A
    /// cancelled run aborts like a timeout (never a refutation proof) and
    /// sets [`SearchResult::cancelled`].
    pub cancel: Option<CancelToken>,
}

/// Exit status of a search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SearchStatus {
    /// Optimality proven (or, for satisfaction search, a solution found).
    Optimal,
    /// A solution was found but the budget expired before the proof.
    Feasible,
    /// The whole tree was refuted: no solution exists.
    Infeasible,
    /// Budget expired with no solution found.
    Unknown,
}

impl SearchStatus {
    /// Stable lower-case rendering (trace events, metrics files).
    pub fn as_str(self) -> &'static str {
        match self {
            SearchStatus::Optimal => "optimal",
            SearchStatus::Feasible => "feasible",
            SearchStatus::Infeasible => "infeasible",
            SearchStatus::Unknown => "unknown",
        }
    }
}

/// A complete assignment snapshot (indexed by `VarId`).
#[derive(Clone, Debug)]
pub struct Solution {
    values: Vec<i32>,
}

impl Solution {
    pub fn value(&self, v: VarId) -> i32 {
        self.values[v.idx()]
    }
}

#[derive(Clone, Copy, Debug, Default)]
pub struct SearchStats {
    pub nodes: u64,
    pub fails: u64,
    pub solutions: u64,
    pub max_depth: usize,
    pub propagations: u64,
    pub time: Duration,
    /// Fail-budget restarts performed ([`SearchConfig::restarts`]).
    pub restarts: u64,
    /// Prefix nogoods harvested and posted across all restarts.
    pub nogoods_posted: u64,
    /// Values pruned by nogood unit propagation.
    pub nogoods_pruned: u64,
}

#[derive(Debug)]
pub struct SearchResult {
    pub status: SearchStatus,
    pub best: Option<Solution>,
    pub objective: Option<i32>,
    pub stats: SearchStats,
    /// The tree was fully exhausted (no budget abort). Under a shared
    /// portfolio bound this is an optimality certificate for the portfolio
    /// incumbent even when this thread found no solution itself.
    pub completed: bool,
    /// The run was stopped by its [`SearchConfig::cancel`] token (a kind
    /// of abort: `completed` is `false` and the status is `Feasible` or
    /// `Unknown`, never a proof).
    pub cancelled: bool,
}

impl SearchResult {
    pub fn is_sat(&self) -> bool {
        self.best.is_some()
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Abort {
    Timeout,
    NodeLimit,
    Cancelled,
    /// The fail budget of the current dive expired: unwind to the root
    /// (harvesting nogoods on the way) and re-dive with a bigger budget.
    Restart,
}

/// Pick the next branching variable exactly as the DFS brancher would:
/// exhaust earlier phases first, then apply the phase's heuristic. Shared
/// with the EPS splitter ([`crate::eps`]) so decomposed subtrees branch on
/// the same variables as a sequential dive.
pub(crate) fn select_phase_var(
    store: &crate::store::Store,
    phases: &[Phase],
) -> Option<(usize, VarId)> {
    for (pi, phase) in phases.iter().enumerate() {
        let unfixed = phase.vars.iter().copied().filter(|&v| !store.is_fixed(v));
        let pick = match phase.var_sel {
            VarSel::InputOrder => unfixed.take(1).next(),
            VarSel::FirstFail => unfixed.min_by_key(|&v| store.size(v)),
            VarSel::SmallestMin => unfixed.min_by_key(|&v| (store.min(v), store.size(v))),
        };
        if let Some(v) = pick {
            return Some((pi, v));
        }
    }
    None
}

struct Dfs<'m> {
    model: &'m mut Model,
    phases: Vec<Phase>,
    objective: Option<VarId>,
    bound: i32,
    best: Option<Solution>,
    best_obj: Option<i32>,
    deadline: Option<Instant>,
    node_limit: Option<u64>,
    shared_bound: Option<Arc<AtomicI32>>,
    stats: SearchStats,
    /// In satisfaction mode we stop at the first solution.
    stop_at_first: bool,
    /// True once a prune used a bound tighter than our own incumbent's —
    /// an exhausted tree then proves "no better than the shared bound",
    /// not infeasibility.
    external_bound_used: bool,
    /// Enumeration mode: collect every solution up to the cap.
    collect: Option<(Vec<Solution>, usize)>,
    trace: Option<TraceHandle>,
    state_hash_every: Option<u64>,
    cancel: Option<CancelToken>,
    /// Fail-budgeted restart policy (`None` = single dive).
    restart_cfg: Option<RestartConfig>,
    /// Dives started so far (indexes [`RestartPolicy::budget`]).
    restart_index: u64,
    /// Fails left before the current dive restarts.
    fails_remaining: Option<u64>,
    /// Positive `(var, val)` decisions on the current DFS branch, root
    /// first — the prefix of every nogood harvested below it.
    path: Vec<(u32, i32)>,
    /// Split frames currently on the stack. A split decision is not a
    /// `(var, val)` literal, so prefixes through one are inexpressible
    /// as nogoods and harvesting is suppressed while any are open.
    split_frames: u32,
    /// Nogoods harvested during the current restart unwind.
    harvested: Vec<Vec<(VarId, i32)>>,
    /// Shared clause store of the posted nogood propagator.
    nogood_base: Option<Arc<Mutex<NogoodBase>>>,
}

impl<'m> Dfs<'m> {
    /// Emit a trace event. The closure keeps event construction off the
    /// no-sink path entirely: disabled tracing costs one branch here.
    #[inline]
    fn emit(&self, event: impl FnOnce() -> SearchEvent) {
        if let Some(t) = &self.trace {
            t.emit(&event());
        }
    }

    fn budget_check(&mut self) -> Result<(), Abort> {
        if let Some(c) = &self.cancel {
            if c.is_cancelled() {
                self.emit(|| SearchEvent::Cancelled {
                    nodes: self.stats.nodes,
                });
                return Err(Abort::Cancelled);
            }
        }
        if let Some(dl) = self.deadline {
            // Checking the clock is ~20 ns; fine at every node.
            if Instant::now() >= dl {
                self.emit(|| SearchEvent::DeadlineHit {
                    nodes: self.stats.nodes,
                });
                return Err(Abort::Timeout);
            }
        }
        if let Some(nl) = self.node_limit {
            if self.stats.nodes >= nl {
                self.emit(|| SearchEvent::NodeLimitHit {
                    nodes: self.stats.nodes,
                });
                return Err(Abort::NodeLimit);
            }
        }
        // Last so real budget aborts always win over a mere restart.
        if self.fails_remaining == Some(0) {
            return Err(Abort::Restart);
        }
        Ok(())
    }

    /// Effective objective upper bound, folding in the shared portfolio
    /// bound when present.
    fn effective_bound(&mut self) -> i32 {
        match &self.shared_bound {
            Some(sb) => {
                let ext = sb.load(Ordering::Relaxed);
                if ext < self.bound {
                    self.external_bound_used = true;
                }
                self.bound.min(ext)
            }
            None => self.bound,
        }
    }

    fn select_var(&self) -> Option<(usize, VarId)> {
        select_phase_var(&self.model.store, &self.phases)
    }

    fn record_solution(&mut self) {
        self.stats.solutions += 1;
        let s = &self.model.store;
        let values: Vec<i32> = (0..s.num_vars() as u32)
            .map(|i| {
                let v = VarId(i);
                // Non-decision vars may be unfixed but bounded; take min —
                // for the objective this is exact (it is functionally
                // determined), and extraction only reads decision vars.
                s.dom(v).value().unwrap_or_else(|| s.min(v))
            })
            .collect();
        if let Some(obj) = self.objective {
            let val = self.model.store.min(obj);
            self.best_obj = Some(val);
            self.bound = val; // next solutions must beat this strictly
            if let Some(sb) = &self.shared_bound {
                sb.fetch_min(val, Ordering::Relaxed);
            }
            self.emit(|| SearchEvent::BoundUpdate { bound: val });
        }
        self.emit(|| SearchEvent::Solution {
            objective: self.best_obj,
            nodes: self.stats.nodes,
        });
        let sol = Solution { values };
        if let Some((sols, cap)) = &mut self.collect {
            if sols.len() < *cap {
                sols.push(sol.clone());
            }
        }
        self.best = Some(sol);
    }

    /// Enumeration cap reached?
    fn collection_full(&self) -> bool {
        matches!(&self.collect, Some((sols, cap)) if sols.len() >= *cap)
    }

    /// Run propagation to fixpoint at the current node: `Ok(true)` =
    /// consistent, `Ok(false)` = refuted. The engine surfaces a cancelled
    /// fixpoint as `Err(Fail)`; treating that as a refutation would let a
    /// cancelled run masquerade as an exhausted (proof-carrying) tree, so
    /// a failure with the token raised aborts instead.
    fn fixpoint(&mut self) -> Result<bool, Abort> {
        match self.model.engine.fixpoint(&mut self.model.store) {
            Ok(()) => Ok(true),
            Err(_) => {
                if self.cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
                    Err(Abort::Cancelled)
                } else {
                    Ok(false)
                }
            }
        }
    }

    /// Count and trace a refuted node.
    #[inline]
    fn fail(&mut self) {
        self.stats.fails += 1;
        if let Some(f) = &mut self.fails_remaining {
            *f = f.saturating_sub(1);
        }
        self.emit(|| SearchEvent::Fail {
            depth: self.model.store.depth(),
        });
    }

    /// Turn this frame's refuted values into prefix nogoods
    /// (`¬(path ∧ var=u)` for each refuted `u`), collected during a
    /// restart unwind and posted by [`Dfs::dive`]. Sound only when no
    /// split frame is open — see the `split_frames` field.
    fn harvest(&mut self, var: VarId, refuted: &[i32]) {
        if self.split_frames > 0 || !self.restart_cfg.is_some_and(|rc| rc.nogoods) {
            return;
        }
        for &u in refuted {
            let mut clause: Vec<(VarId, i32)> =
                self.path.iter().map(|&(v, val)| (VarId(v), val)).collect();
            clause.push((var, u));
            self.harvested.push(clause);
        }
    }

    /// The branch value under the phase's selector, diversified after a
    /// restart: on dive `k > 0` the value is a deterministic
    /// pseudo-random member keyed on `(k, depth)`, so successive dives
    /// descend into *different* regions of the space while the recorded
    /// nogoods keep the already-refuted prefixes off-limits — without
    /// this, a deterministic heuristic re-walks the same leftmost region
    /// every dive and restarts degenerate into plain DFS with overhead.
    /// Dive 0 (and any search without restarts) uses the pure Min/Max
    /// heuristic, so trajectories with the policy disabled are
    /// untouched, and the whole scheme stays replayable: the value is a
    /// pure function of deterministic search state.
    fn branch_value(&self, var: VarId, val_sel: ValSel) -> i32 {
        if self.restart_index > 0 && self.restart_cfg.is_some() {
            let size = self.model.store.size(var);
            let depth = self.path.len() as u64;
            // splitmix64-style finalizer over (dive, depth): cheap, and
            // uncorrelated enough that sibling depths land in different
            // parts of the domain.
            let mut z = self
                .restart_index
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(depth.wrapping_mul(0xBF58_476D_1CE4_E5B9));
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z ^= z >> 27;
            return self.model.store.dom(var).nth_member(z % size);
        }
        if val_sel == ValSel::Min {
            self.model.store.min(var)
        } else {
            self.model.store.max(var)
        }
    }

    /// Returns Ok(()) when the subtree is exhausted (normally or by
    /// pruning); Err on budget exhaustion.
    fn dfs(&mut self) -> Result<(), Abort> {
        self.budget_check()?;
        self.stats.nodes += 1;
        self.stats.max_depth = self.stats.max_depth.max(self.model.store.depth());

        // Bound pruning for branch-and-bound.
        if let Some(obj) = self.objective {
            let b = self.effective_bound();
            if b != i32::MAX {
                if self.model.store.remove_above(obj, b - 1).is_err() {
                    self.fail();
                    return Ok(());
                }
                if !self.fixpoint()? {
                    self.fail();
                    return Ok(());
                }
            }
        }

        // Periodic store digest, taken at the node's fixpoint (bound
        // pruning included) so record and replay hash identical states.
        if let Some(n) = self.state_hash_every {
            if n > 0 && self.trace.is_some() && self.stats.nodes.is_multiple_of(n) {
                let nodes = self.stats.nodes;
                let hash = self.model.store.state_hash();
                self.emit(move || SearchEvent::StateHash { nodes, hash });
            }
        }

        let Some((pi, var)) = self.select_var() else {
            self.record_solution();
            return Ok(());
        };

        let val_sel = self.phases[pi].val_sel;
        match val_sel {
            ValSel::Min | ValSel::Max => {
                // Values whose subtrees were exhausted without stopping:
                // refuted under the current bound, and so the material of
                // prefix nogoods if a restart unwinds through this frame.
                let mut refuted: Vec<i32> = Vec::new();
                // Enumerate values; domains can change between attempts, so
                // re-read the next candidate each time.
                loop {
                    if self.model.store.is_fixed(var) {
                        // A neighbour's propagation fixed it; descend once.
                        // No path entry: the value is entailed by the
                        // prefix, so adding it would only lengthen nogoods.
                        self.model.store.push_level();
                        let r = self.dfs();
                        self.model.store.pop_level();
                        return r;
                    }
                    let v = self.branch_value(var, val_sel);
                    // Try var = v.
                    self.emit(|| SearchEvent::Branch {
                        depth: self.model.store.depth(),
                        var: var.0,
                        val: v,
                    });
                    self.model.store.push_level();
                    let ok = if self.model.store.fix(var, v).is_ok() {
                        match self.fixpoint() {
                            Ok(consistent) => consistent,
                            Err(a) => {
                                self.model.store.pop_level();
                                return Err(a);
                            }
                        }
                    } else {
                        false
                    };
                    if ok {
                        self.path.push((var.0, v));
                        let r = self.dfs();
                        self.path.pop();
                        self.model.store.pop_level();
                        self.emit(|| SearchEvent::Backtrack {
                            depth: self.model.store.depth(),
                        });
                        if let Err(a) = r {
                            if a == Abort::Restart {
                                self.harvest(var, &refuted);
                            }
                            return Err(a);
                        }
                        if (self.stop_at_first && self.best.is_some()) || self.collection_full() {
                            return Ok(());
                        }
                        refuted.push(v);
                    } else {
                        self.model.store.pop_level();
                        self.fail();
                        refuted.push(v);
                    }
                    // Refute var = v and continue with the rest.
                    if self.model.store.remove_value(var, v).is_err() || !self.fixpoint()? {
                        self.fail();
                        return Ok(());
                    }
                }
            }
            ValSel::Split => {
                self.split_frames += 1;
                let r = self.dfs_split(var);
                self.split_frames -= 1;
                r
            }
        }
    }

    /// The [`ValSel::Split`] frame body: two half-domain children.
    fn dfs_split(&mut self, var: VarId) -> Result<(), Abort> {
        let mid = self.model.store.dom(var).split_point();
        for half in 0..2 {
            // Lower half is `≤ mid`, upper is `≥ mid+1`; the event's
            // `val` is the half's boundary.
            self.emit(|| SearchEvent::Branch {
                depth: self.model.store.depth(),
                var: var.0,
                val: if half == 0 { mid } else { mid + 1 },
            });
            self.model.store.push_level();
            let narrowed = if half == 0 {
                self.model.store.remove_above(var, mid).is_ok()
            } else {
                self.model.store.remove_below(var, mid + 1).is_ok()
            };
            let ok = if narrowed {
                match self.fixpoint() {
                    Ok(consistent) => consistent,
                    Err(a) => {
                        self.model.store.pop_level();
                        return Err(a);
                    }
                }
            } else {
                false
            };
            if ok {
                let r = self.dfs();
                self.model.store.pop_level();
                self.emit(|| SearchEvent::Backtrack {
                    depth: self.model.store.depth(),
                });
                r?;
                if (self.stop_at_first && self.best.is_some()) || self.collection_full() {
                    return Ok(());
                }
            } else {
                self.model.store.pop_level();
                self.fail();
            }
        }
        Ok(())
    }

    /// One search descent under its own backtrack level, re-diving on
    /// fail-budget restarts until the tree is exhausted or a real budget
    /// aborts. Harvested nogoods are posted to the shared base and
    /// propagated at the root between dives, so each restart resumes
    /// with every refuted prefix excluded.
    fn dive(&mut self) -> Result<(), Abort> {
        loop {
            if let Some(rc) = self.restart_cfg {
                self.fails_remaining = Some(rc.policy.budget(self.restart_index));
            }
            // Every dive runs under its own backtrack level so search
            // refutations never permanently mutate the root store (a
            // root-level `remove_value` could otherwise leave an empty
            // domain behind an exhausted dive).
            self.model.store.push_level();
            let r = self.dfs();
            self.model.store.pop_level();
            debug_assert!(self.path.is_empty(), "decision path survived unwind");
            self.path.clear();
            match r {
                Err(Abort::Restart) => {
                    self.restart_index += 1;
                    self.stats.restarts += 1;
                    let harvested = std::mem::take(&mut self.harvested);
                    self.stats.nogoods_posted += harvested.len() as u64;
                    let posted_any = !harvested.is_empty();
                    if let Some(base) = &self.nogood_base {
                        let mut b = base.lock().unwrap();
                        for clause in harvested {
                            b.add_clause(clause);
                        }
                    }
                    if posted_any && self.nogood_base.is_some() {
                        // Run the new clauses (length-1 nogoods prune
                        // permanently here) to a root fixpoint. A failing
                        // root means every remaining branch is refuted:
                        // the dive sequence is exhausted, which the
                        // caller reads as a completed tree.
                        self.model.engine.schedule_all();
                        match self.fixpoint() {
                            Ok(true) => {}
                            Ok(false) => return Ok(()),
                            Err(a) => return Err(a),
                        }
                    }
                    let bound = self.bound;
                    self.emit(|| SearchEvent::Restart { bound });
                }
                other => return other,
            }
        }
    }
}

fn run(
    model: &mut Model,
    objective: Option<VarId>,
    config: &SearchConfig,
    stop_at_first: bool,
) -> SearchResult {
    run_with_collect(model, objective, config, stop_at_first, None).0
}

fn run_with_collect(
    model: &mut Model,
    objective: Option<VarId>,
    config: &SearchConfig,
    stop_at_first: bool,
    collect: Option<usize>,
) -> (SearchResult, Vec<Solution>) {
    let t0 = Instant::now();
    if let Some(t) = &config.trace {
        t.emit(&SearchEvent::Start {
            vars: model.store.num_vars(),
            propagators: model.engine.num_propagators(),
        });
    }
    // Install (or clear) the cancellation token for the engine-side poll;
    // unconditional so a token left by a previous cancelled run on the
    // same model never bleeds into this one.
    model.engine.set_cancel(config.cancel.clone());
    // Fail-budgeted restarts are disabled under enumeration: a re-dive
    // would collect solutions already emitted by an abandoned dive.
    let restart_cfg = if collect.is_some() {
        None
    } else {
        config.restarts
    };
    // With nogood recording on, post the watched-literal propagator over
    // the decision variables before the initial full-rescan scheduling
    // below. The clause base starts empty (the propagator no-ops until
    // the first restart harvest) and is cleared again at run end.
    let nogood_base = match restart_cfg {
        Some(rc) if rc.nogoods => {
            let mut seen = std::collections::HashSet::new();
            let vars: Vec<VarId> = config
                .phases
                .iter()
                .flat_map(|p| p.vars.iter().copied())
                .filter(|v| seen.insert(v.0))
                .collect();
            if vars.is_empty() {
                None
            } else {
                let base = Arc::new(Mutex::new(NogoodBase::new(vars)));
                model
                    .engine
                    .post(Box::new(NogoodProp::new(base.clone())), &model.store);
                Some(base)
            }
        }
        _ => None,
    };
    // A previous run on this model may have aborted mid-fixpoint — a
    // failure or cancellation resets the queue and discards pending wake
    // events, leaving root domains partially propagated with nobody
    // scheduled to finish the job. Start from a full rescan so this run's
    // root fixpoint never depends on what an earlier run left behind (on
    // a freshly built model this is a no-op: posting already queues every
    // propagator for a full rescan).
    model.engine.schedule_all();
    // The root fixpoint runs under its own trail level: a failing (or
    // cancelled) propagator may have emptied a domain mid-flight, and at
    // the bare root there would be no mark to unwind to — the next run on
    // this model would then panic on the empty domain. On failure the
    // level is popped, restoring the caller's pre-run store; on success it
    // stays open for the search below (the root narrowing must remain
    // visible) and is simply never popped — one leaked mark per run on a
    // reused model, with depth-relative bookkeeping unaffected.
    model.store.push_level();
    let root_ok = model.engine.fixpoint(&mut model.store).is_ok();
    if !root_ok {
        model.store.pop_level();
    }
    let root_cancelled = !root_ok && config.cancel.as_ref().is_some_and(|c| c.is_cancelled());
    let restart = config.restart_on_solution && objective.is_some() && !stop_at_first;

    let mut dfs = Dfs {
        model,
        phases: config.phases.clone(),
        objective,
        bound: i32::MAX,
        best: None,
        best_obj: None,
        deadline: config.timeout.map(|d| t0 + d),
        node_limit: config.node_limit,
        shared_bound: config.shared_bound.clone(),
        stats: SearchStats::default(),
        stop_at_first: stop_at_first || restart,
        external_bound_used: false,
        collect: collect.map(|cap| (Vec::new(), cap)),
        trace: config.trace.clone(),
        state_hash_every: config.state_hash_every,
        cancel: config.cancel.clone(),
        restart_cfg,
        restart_index: 0,
        fails_remaining: None,
        path: Vec::new(),
        split_frames: 0,
        harvested: Vec::new(),
        nogood_base: nogood_base.clone(),
    };

    let aborted: Option<Abort> = if !root_ok {
        None
    } else if !restart {
        dfs.dive().err()
    } else {
        // Restart BnB: dive to the first (improving) solution, tighten the
        // bound permanently at the root, and re-dive until refuted.
        let obj = objective.unwrap();
        let mut aborted = None;
        loop {
            let sols_before = dfs.stats.solutions;
            match dfs.dive() {
                Err(a) => {
                    aborted = Some(a);
                    break;
                }
                Ok(()) => {
                    if dfs.stats.solutions == sols_before {
                        break; // exhausted: no better solution exists
                    }
                    // Tighten at root (permanent) and go again.
                    let bound = dfs.effective_bound();
                    if bound == i32::MIN
                        || dfs.model.store.remove_above(obj, bound - 1).is_err()
                        || !dfs.fixpoint().unwrap_or_else(|a| {
                            aborted = Some(a);
                            false
                        })
                    {
                        break; // bound refuted at root: incumbent optimal
                    }
                    dfs.emit(|| SearchEvent::Restart { bound });
                }
            }
        }
        aborted
    };
    let cancelled = root_cancelled || aborted == Some(Abort::Cancelled);
    let completed = root_ok && aborted.is_none();

    let status = if !root_ok {
        if root_cancelled {
            // The root fixpoint was interrupted, not refuted.
            SearchStatus::Unknown
        } else {
            SearchStatus::Infeasible
        }
    } else {
        match (&dfs.best, aborted.is_some()) {
            (Some(_), false) => SearchStatus::Optimal,
            (Some(_), true) => SearchStatus::Feasible,
            // Exhausted with no solution: only a true infeasibility proof
            // if no external bound narrowed the tree.
            (None, false) if !dfs.external_bound_used => SearchStatus::Infeasible,
            (None, false) => SearchStatus::Unknown,
            (None, true) => SearchStatus::Unknown,
        }
    };

    let mut stats = dfs.stats;
    stats.time = t0.elapsed();
    stats.propagations = dfs.model.engine.propagations;
    if let Some(base) = &nogood_base {
        let mut b = base.lock().unwrap();
        stats.nogoods_pruned = b.pruned;
        // Recorded nogoods are only valid under this run's monotonically
        // tightening bound; disarm them so a reused model cannot replay
        // them against a different objective.
        b.clear();
    }

    if let Some(t) = &config.trace {
        t.emit(&SearchEvent::Done {
            status: status.as_str(),
            nodes: stats.nodes,
            fails: stats.fails,
            solutions: stats.solutions,
        });
        t.flush();
    }

    let collected = dfs.collect.take().map(|(v, _)| v).unwrap_or_default();
    // Leave no token behind: direct engine users after this run should
    // not observe stale cancellation.
    dfs.model.engine.set_cancel(None);
    (
        SearchResult {
            status,
            best: dfs.best,
            objective: dfs.best_obj,
            stats,
            completed,
            cancelled,
        },
        collected,
    )
}

/// Enumerate solutions over the phase variables, up to `max_solutions`.
/// The returned status is `Optimal` when the tree was exhausted (the list
/// is then complete) and `Feasible` when the cap or a budget cut it short.
pub fn solve_all(
    model: &mut Model,
    config: &SearchConfig,
    max_solutions: usize,
) -> (SearchResult, Vec<Solution>) {
    let (mut r, sols) = run_with_collect(model, None, config, false, Some(max_solutions));
    if r.status == SearchStatus::Optimal && sols.len() >= max_solutions {
        r.status = SearchStatus::Feasible; // cap hit: may be incomplete
    }
    if r.status == SearchStatus::Infeasible && !sols.is_empty() {
        // Exhausted after collecting: complete enumeration.
        r.status = SearchStatus::Optimal;
    }
    (r, sols)
}

/// Find one solution over the phase variables.
pub fn solve(model: &mut Model, config: &SearchConfig) -> SearchResult {
    run(model, None, config, true)
}

/// Minimize `objective` by branch-and-bound over the phase variables.
pub fn minimize(model: &mut Model, objective: VarId, config: &SearchConfig) -> SearchResult {
    run(model, Some(objective), config, false)
}

/// Propagate once at the root without searching; returns false when the
/// model is already inconsistent (used for quick infeasibility probes).
pub fn propagate_root(model: &mut Model) -> bool {
    model.engine.fixpoint(&mut model.store).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::basic::{MaxOf, NeqOffset, XPlusCLeqY};
    use crate::props::cumulative::{CumTask, Cumulative};

    fn phase_all(model: &Model, var_sel: VarSel, val_sel: ValSel) -> Vec<Phase> {
        let vars: Vec<VarId> = (0..model.store.num_vars() as u32).map(VarId).collect();
        vec![Phase::new(vars, var_sel, val_sel)]
    }

    #[test]
    fn solve_trivial_satisfaction() {
        let mut m = Model::new();
        let x = m.new_var(0, 5);
        let y = m.new_var(0, 5);
        m.post(Box::new(NeqOffset { x, y, c: 0 }));
        let cfg = SearchConfig {
            phases: phase_all(&m, VarSel::InputOrder, ValSel::Min),
            ..Default::default()
        };
        let r = solve(&mut m, &cfg);
        assert_eq!(r.status, SearchStatus::Optimal);
        let sol = r.best.unwrap();
        assert_ne!(sol.value(x), sol.value(y));
    }

    #[test]
    fn infeasible_is_detected() {
        let mut m = Model::new();
        let x = m.new_var(0, 0);
        let y = m.new_var(0, 0);
        m.post(Box::new(NeqOffset { x, y, c: 0 }));
        let cfg = SearchConfig {
            phases: phase_all(&m, VarSel::InputOrder, ValSel::Min),
            ..Default::default()
        };
        let r = solve(&mut m, &cfg);
        assert_eq!(r.status, SearchStatus::Infeasible);
        assert!(r.best.is_none());
    }

    #[test]
    fn minimize_simple_makespan() {
        // Two chains a→b, c→d on a unit resource; durations 2.
        let mut m = Model::new();
        let horizon = 20;
        let starts: Vec<VarId> = (0..4).map(|_| m.new_var(0, horizon)).collect();
        let (a, b, c, d) = (starts[0], starts[1], starts[2], starts[3]);
        m.post(Box::new(XPlusCLeqY { x: a, c: 2, y: b }));
        m.post(Box::new(XPlusCLeqY { x: c, c: 2, y: d }));
        m.post(Box::new(Cumulative::new(
            starts
                .iter()
                .map(|&v| CumTask {
                    start: v,
                    dur: 2,
                    req: 1,
                })
                .collect(),
            1,
        )));
        let obj = m.new_var(0, horizon + 2);
        let ends: Vec<VarId> = starts
            .iter()
            .map(|&v| {
                let e = m.new_var(0, horizon + 2);
                m.post(Box::new(crate::props::basic::XPlusCEqY {
                    x: v,
                    c: 2,
                    y: e,
                }));
                e
            })
            .collect();
        m.post(Box::new(MaxOf { xs: ends, y: obj }));
        let cfg = SearchConfig {
            phases: vec![Phase::new(starts.clone(), VarSel::SmallestMin, ValSel::Min)],
            ..Default::default()
        };
        let r = minimize(&mut m, obj, &cfg);
        assert_eq!(r.status, SearchStatus::Optimal);
        // 4 tasks × 2 cc on one machine = 8 cc optimum.
        assert_eq!(r.objective, Some(8));
    }

    #[test]
    fn minimize_respects_node_limit() {
        let mut m = Model::new();
        let vars: Vec<VarId> = (0..12).map(|_| m.new_var(0, 30)).collect();
        for w in vars.windows(2) {
            m.post(Box::new(NeqOffset {
                x: w[0],
                y: w[1],
                c: 0,
            }));
        }
        let obj = m.new_var(0, 40);
        m.post(Box::new(MaxOf {
            xs: vars.clone(),
            y: obj,
        }));
        let cfg = SearchConfig {
            phases: vec![Phase::new(vars, VarSel::FirstFail, ValSel::Max)],
            node_limit: Some(5),
            ..Default::default()
        };
        let r = minimize(&mut m, obj, &cfg);
        assert!(matches!(
            r.status,
            SearchStatus::Feasible | SearchStatus::Unknown
        ));
        assert!(r.stats.nodes <= 6);
    }

    #[test]
    fn split_branching_finds_optimum() {
        let mut m = Model::new();
        let x = m.new_var(0, 100);
        let y = m.new_var(0, 100);
        m.post(Box::new(XPlusCLeqY { x, c: 10, y }));
        let cfg = SearchConfig {
            phases: vec![Phase::new(vec![x, y], VarSel::InputOrder, ValSel::Split)],
            ..Default::default()
        };
        let r = minimize(&mut m, y, &cfg);
        assert_eq!(r.objective, Some(10));
    }

    #[test]
    fn phased_search_orders_decisions() {
        // Phase 1 fixes x, phase 2 fixes y; both must end fixed.
        let mut m = Model::new();
        let x = m.new_var(0, 3);
        let y = m.new_var(0, 3);
        m.post(Box::new(NeqOffset { x, y, c: 0 }));
        let cfg = SearchConfig {
            phases: vec![
                Phase::new(vec![x], VarSel::InputOrder, ValSel::Max),
                Phase::new(vec![y], VarSel::InputOrder, ValSel::Min),
            ],
            ..Default::default()
        };
        let r = solve(&mut m, &cfg);
        let sol = r.best.unwrap();
        assert_eq!(sol.value(x), 3); // Max val-sel in phase 1
        assert_eq!(sol.value(y), 0); // Min val-sel in phase 2
    }

    #[test]
    fn shared_bound_prunes() {
        let mut m = Model::new();
        let x = m.new_var(0, 100);
        let shared = Arc::new(AtomicI32::new(5)); // externally known bound
        let cfg = SearchConfig {
            phases: vec![Phase::new(vec![x], VarSel::InputOrder, ValSel::Max)],
            shared_bound: Some(shared),
            ..Default::default()
        };
        let r = minimize(&mut m, x, &cfg);
        // Search may only return objectives strictly below the shared bound.
        assert!(r.objective.unwrap() < 5);
    }

    #[test]
    fn timeout_returns_quickly() {
        let mut m = Model::new();
        let vars: Vec<VarId> = (0..40).map(|_| m.new_var(0, 39)).collect();
        // All-different via pairwise neq: huge tree.
        for i in 0..vars.len() {
            for j in (i + 1)..vars.len() {
                m.post(Box::new(NeqOffset {
                    x: vars[i],
                    y: vars[j],
                    c: 0,
                }));
            }
        }
        let obj = m.new_var(0, 39);
        m.post(Box::new(MaxOf {
            xs: vars.clone(),
            y: obj,
        }));
        let cfg = SearchConfig {
            phases: vec![Phase::new(vars, VarSel::FirstFail, ValSel::Min)],
            timeout: Some(Duration::from_millis(50)),
            ..Default::default()
        };
        let t0 = Instant::now();
        let _ = minimize(&mut m, obj, &cfg);
        assert!(t0.elapsed() < Duration::from_secs(5));
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::props::basic::{MaxOf, NeqOffset, XPlusCLeqY};

    #[test]
    fn solve_all_counts_permutations() {
        use crate::props::alldiff::AllDifferent;
        let mut m = Model::new();
        let vars: Vec<VarId> = (0..4).map(|_| m.new_var(0, 3)).collect();
        m.post(Box::new(AllDifferent::new(vars.clone())));
        let cfg = SearchConfig {
            phases: vec![Phase::new(vars, VarSel::InputOrder, ValSel::Min)],
            ..Default::default()
        };
        let (r, sols) = solve_all(&mut m, &cfg, 100);
        assert_eq!(sols.len(), 24); // 4!
        assert_eq!(r.status, SearchStatus::Optimal);
        // All distinct.
        let mut keys: Vec<Vec<i32>> = sols
            .iter()
            .map(|s| (0..4).map(|i| s.value(VarId(i))).collect())
            .collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 24);
    }

    #[test]
    fn solve_all_respects_cap() {
        use crate::props::alldiff::AllDifferent;
        let mut m = Model::new();
        let vars: Vec<VarId> = (0..4).map(|_| m.new_var(0, 3)).collect();
        m.post(Box::new(AllDifferent::new(vars.clone())));
        let cfg = SearchConfig {
            phases: vec![Phase::new(vars, VarSel::InputOrder, ValSel::Min)],
            ..Default::default()
        };
        let (r, sols) = solve_all(&mut m, &cfg, 5);
        assert_eq!(sols.len(), 5);
        assert_eq!(r.status, SearchStatus::Feasible);
    }

    #[test]
    fn solve_all_on_unsat_is_empty_and_infeasible() {
        let mut m = Model::new();
        let x = m.new_var(0, 0);
        let y = m.new_var(0, 0);
        m.post(Box::new(NeqOffset { x, y, c: 0 }));
        let cfg = SearchConfig {
            phases: vec![Phase::new(vec![x, y], VarSel::InputOrder, ValSel::Min)],
            ..Default::default()
        };
        let (r, sols) = solve_all(&mut m, &cfg, 10);
        assert!(sols.is_empty());
        assert_eq!(r.status, SearchStatus::Infeasible);
    }

    #[test]
    fn stats_count_nodes_and_solutions() {
        let mut m = Model::new();
        let x = m.new_var(0, 3);
        let y = m.new_var(0, 3);
        m.post(Box::new(NeqOffset { x, y, c: 0 }));
        let cfg = SearchConfig {
            phases: vec![Phase::new(vec![x, y], VarSel::InputOrder, ValSel::Min)],
            ..Default::default()
        };
        let r = solve(&mut m, &cfg);
        assert_eq!(r.stats.solutions, 1);
        assert!(r.stats.nodes >= 1);
        assert!(r.stats.time.as_nanos() > 0);
        assert!(r.is_sat());
        assert!(r.completed);
    }

    #[test]
    fn max_value_selection_prefers_high_values() {
        let mut m = Model::new();
        let x = m.new_var(0, 9);
        let cfg = SearchConfig {
            phases: vec![Phase::new(vec![x], VarSel::InputOrder, ValSel::Max)],
            ..Default::default()
        };
        let r = solve(&mut m, &cfg);
        assert_eq!(r.best.unwrap().value(x), 9);
    }

    #[test]
    fn restart_bnb_agrees_with_chronological() {
        // Same model solved both ways must yield the same optimum.
        let build = |m: &mut Model| -> (Vec<VarId>, VarId) {
            let starts: Vec<VarId> = (0..5).map(|_| m.new_var(0, 20)).collect();
            for w in starts.windows(2) {
                m.post(Box::new(XPlusCLeqY {
                    x: w[0],
                    c: 2,
                    y: w[1],
                }));
            }
            let obj = m.new_var(0, 25);
            m.post(Box::new(MaxOf {
                xs: starts.clone(),
                y: obj,
            }));
            (starts, obj)
        };
        let mut results = Vec::new();
        for restart in [false, true] {
            let mut m = Model::new();
            let (starts, obj) = build(&mut m);
            let cfg = SearchConfig {
                phases: vec![Phase::new(starts, VarSel::SmallestMin, ValSel::Min)],
                restart_on_solution: restart,
                ..Default::default()
            };
            let r = minimize(&mut m, obj, &cfg);
            assert_eq!(r.status, SearchStatus::Optimal, "restart={restart}");
            results.push(r.objective);
        }
        assert_eq!(results[0], results[1]);
    }

    #[test]
    fn minimize_without_phases_reports_root_solution() {
        // No decision vars: the root propagation is the whole search.
        let mut m = Model::new();
        let x = m.new_var(5, 5);
        let cfg = SearchConfig::default();
        let r = minimize(&mut m, x, &cfg);
        assert_eq!(r.objective, Some(5));
        assert_eq!(r.status, SearchStatus::Optimal);
    }

    #[test]
    fn repeated_searches_on_fresh_models_are_deterministic() {
        let run = || {
            let mut m = Model::new();
            let vars: Vec<VarId> = (0..6).map(|_| m.new_var(0, 5)).collect();
            for i in 0..vars.len() {
                for j in (i + 1)..vars.len() {
                    m.post(Box::new(NeqOffset {
                        x: vars[i],
                        y: vars[j],
                        c: 0,
                    }));
                }
            }
            let cfg = SearchConfig {
                phases: vec![Phase::new(vars.clone(), VarSel::FirstFail, ValSel::Min)],
                ..Default::default()
            };
            let r = solve(&mut m, &cfg);
            let sol = r.best.unwrap();
            vars.iter().map(|&v| sol.value(v)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn luby_sequence_is_the_classic_one() {
        let seq: Vec<u64> = (1..=15).map(luby).collect();
        assert_eq!(seq, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn geometric_budgets_always_grow() {
        // A degenerate factor (≤ 1.0x) is clamped so the budget sequence
        // still diverges — the completeness guarantee.
        let p = RestartPolicy::Geometric {
            base: 4,
            factor_percent: 100,
        };
        assert!(p.budget(1) > p.budget(0));
        let g = RestartPolicy::Geometric {
            base: 256,
            factor_percent: 150,
        };
        assert_eq!(g.budget(0), 256);
        assert_eq!(g.budget(1), 384);
        assert_eq!(g.budget(2), 576);
        // Saturates instead of overflowing.
        assert_eq!(g.budget(500), u64::MAX);
    }

    #[test]
    fn restart_config_token_round_trips() {
        for cfg in [
            RestartConfig::default(),
            RestartConfig {
                policy: RestartPolicy::Luby { unit: 64 },
                nogoods: false,
            },
            RestartConfig {
                policy: RestartPolicy::Geometric {
                    base: 100,
                    factor_percent: 200,
                },
                nogoods: true,
            },
        ] {
            let token = cfg.config_token();
            assert_eq!(RestartConfig::parse_token(&token), Some(cfg), "{token}");
        }
        assert_eq!(
            RestartConfig::default().config_token(),
            "geom:256:150+ng",
            "default token is pinned: it appears in recorded trace headers"
        );
        assert!(RestartConfig::parse_token("bogus").is_none());
        assert!(RestartConfig::parse_token("geom:1").is_none());
    }

    /// A tight pigeonhole-flavoured instance: enough fails to cross small
    /// restart budgets, small enough to exhaust quickly.
    fn crowded_model() -> (Model, Vec<VarId>, VarId) {
        let mut m = Model::new();
        let vars: Vec<VarId> = (0..7).map(|_| m.new_var(0, 6)).collect();
        for i in 0..vars.len() {
            for j in (i + 1)..vars.len() {
                m.post(Box::new(NeqOffset {
                    x: vars[i],
                    y: vars[j],
                    c: 0,
                }));
            }
        }
        let obj = m.new_var(0, 6);
        m.post(Box::new(MaxOf {
            xs: vars.clone(),
            y: obj,
        }));
        (m, vars, obj)
    }

    #[test]
    fn restarts_preserve_the_optimum() {
        let mut plain_nodes = 0;
        let run = |restarts: Option<RestartConfig>| {
            let (mut m, vars, obj) = crowded_model();
            let cfg = SearchConfig {
                phases: vec![Phase::new(vars, VarSel::FirstFail, ValSel::Max)],
                restarts,
                ..Default::default()
            };
            let r = minimize(&mut m, obj, &cfg);
            assert_eq!(r.status, SearchStatus::Optimal);
            (r.objective, r.stats)
        };
        let (obj_plain, stats_plain) = run(None);
        plain_nodes += stats_plain.nodes;
        assert_eq!(stats_plain.restarts, 0);
        for policy in [
            RestartPolicy::Geometric {
                base: 2,
                factor_percent: 150,
            },
            RestartPolicy::Luby { unit: 2 },
        ] {
            for nogoods in [false, true] {
                let (obj_r, stats_r) = run(Some(RestartConfig { policy, nogoods }));
                assert_eq!(obj_r, obj_plain, "restarts changed the optimum");
                assert!(stats_r.restarts > 0, "budget of 2 fails must trigger");
                if nogoods {
                    assert!(stats_r.nogoods_posted > 0);
                    // With prefix nogoods the re-dives skip refuted
                    // ground: never more nodes than unassisted restarts.
                    let _ = plain_nodes;
                }
            }
        }
    }

    #[test]
    fn restarted_infeasible_proof_is_still_a_proof() {
        // 8 vars, 7 values: pigeonhole-infeasible. Restarts + nogoods
        // must still report Infeasible, not Unknown.
        let mut m = Model::new();
        let vars: Vec<VarId> = (0..8).map(|_| m.new_var(0, 6)).collect();
        for i in 0..vars.len() {
            for j in (i + 1)..vars.len() {
                m.post(Box::new(NeqOffset {
                    x: vars[i],
                    y: vars[j],
                    c: 0,
                }));
            }
        }
        let cfg = SearchConfig {
            phases: vec![Phase::new(vars, VarSel::InputOrder, ValSel::Min)],
            restarts: Some(RestartConfig {
                policy: RestartPolicy::Geometric {
                    base: 2,
                    factor_percent: 150,
                },
                nogoods: true,
            }),
            ..Default::default()
        };
        let r = solve(&mut m, &cfg);
        assert_eq!(r.status, SearchStatus::Infeasible);
        assert!(r.stats.restarts > 0);
    }

    #[test]
    fn nogood_base_is_cleared_at_run_end() {
        // Reusing a model after a restarted run must not leak clauses
        // recorded under the previous (tighter) objective bound.
        let (mut m, vars, obj) = crowded_model();
        let cfg = SearchConfig {
            phases: vec![Phase::new(vars, VarSel::FirstFail, ValSel::Max)],
            restarts: Some(RestartConfig {
                policy: RestartPolicy::Geometric {
                    base: 2,
                    factor_percent: 150,
                },
                nogoods: true,
            }),
            ..Default::default()
        };
        let r1 = minimize(&mut m, obj, &cfg);
        let r2 = minimize(&mut m, obj, &cfg);
        assert_eq!(r1.objective, r2.objective);
        assert_eq!(r1.status, SearchStatus::Optimal);
        assert_eq!(r2.status, SearchStatus::Optimal);
    }

    #[test]
    fn solve_all_ignores_restarts() {
        // Enumeration re-dives would duplicate solutions; restarts are
        // disabled under solve_all and the count stays exact.
        let count = |restarts| {
            let mut m = Model::new();
            let x = m.new_var(0, 2);
            let y = m.new_var(0, 2);
            m.post(Box::new(NeqOffset { x, y, c: 0 }));
            let cfg = SearchConfig {
                phases: vec![Phase::new(vec![x, y], VarSel::InputOrder, ValSel::Min)],
                restarts,
                ..Default::default()
            };
            solve_all(&mut m, &cfg, 100).1.len()
        };
        assert_eq!(count(None), 6);
        assert_eq!(
            count(Some(RestartConfig {
                policy: RestartPolicy::Geometric {
                    base: 1,
                    factor_percent: 150,
                },
                nogoods: true,
            })),
            6
        );
    }

    #[test]
    fn restarts_compose_with_split_branching() {
        // Wide domains route through interval splitting; split frames
        // suppress nogood harvesting but restarts must stay sound.
        let mut m = Model::new();
        let x = m.new_var(0, 4000);
        let y = m.new_var(0, 4000);
        m.post(Box::new(XPlusCLeqY { x, c: 1000, y }));
        let obj = m.new_var(0, 4000);
        m.post(Box::new(MaxOf {
            xs: vec![x, y],
            y: obj,
        }));
        let cfg = SearchConfig {
            phases: vec![Phase::new(vec![x, y], VarSel::SmallestMin, ValSel::Split)],
            restarts: Some(RestartConfig {
                policy: RestartPolicy::Luby { unit: 1 },
                nogoods: true,
            }),
            ..Default::default()
        };
        let r = minimize(&mut m, obj, &cfg);
        assert_eq!(r.status, SearchStatus::Optimal);
        assert_eq!(r.objective, Some(1000));
    }
}
