//! Structured search tracing: typed events, pluggable sinks, and a
//! cheap-when-off handle threaded through the search drivers.
//!
//! The solver emits a [`SearchEvent`] at every decision, failure,
//! backtrack, incumbent, restart and budget abort. Sinks decide what to
//! do with the stream: drop it ([`NullSink`]), keep a bounded ring of
//! recent events plus totals ([`MemorySink`]), stream JSON lines to a
//! writer ([`JsonlSink`]), or print a throttled progress line to stderr
//! ([`ProgressSink`]).
//!
//! Cost model: with no sink configured the per-event cost is a single
//! `Option` discriminant check — the event value is never even
//! constructed (the emit path takes a closure). With a sink configured,
//! each event takes one uncontended mutex lock plus whatever the sink
//! does. Events carry no timestamps, so a fixed model always produces an
//! identical stream — which is what the determinism tests pin down. The
//! event-driven propagation engine keeps that property: priority tiers
//! drain lowest-first, each tier is FIFO, and wake tags are sorted before
//! delivery, so the propagator execution order (and hence the search tree
//! and this stream) is a pure function of the model.

use std::collections::VecDeque;
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One step of the search, in the order the solver took it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SearchEvent {
    /// Search began: model shape at the root.
    Start { vars: usize, propagators: usize },
    /// A decision was posted: `var` constrained toward `val` at `depth`.
    /// For enumeration branchers `val` is the tried value; for splits it
    /// is the half's boundary (`≤ mid` first, then `≥ mid+1`).
    Branch { depth: usize, var: u32, val: i32 },
    /// Propagation refuted the current node.
    Fail { depth: usize },
    /// The solver returned to `depth` after exhausting a subtree.
    Backtrack { depth: usize },
    /// A (new incumbent) solution was found.
    Solution { objective: Option<i32>, nodes: u64 },
    /// The branch-and-bound upper bound tightened to `bound`.
    BoundUpdate { bound: i32 },
    /// Restart-based BnB re-dove from the root under `bound`.
    Restart { bound: i32 },
    /// The wall-clock deadline fired after `nodes` nodes.
    DeadlineHit { nodes: u64 },
    /// The node budget was exhausted.
    NodeLimitHit { nodes: u64 },
    /// A cooperative cancellation token stopped the search.
    Cancelled { nodes: u64 },
    /// Periodic FNV-1a digest of every variable's (min, max) bounds at a
    /// propagation fixpoint, emitted every
    /// [`crate::SearchConfig::state_hash_every`] nodes. Ties a trace to
    /// the solver's actual domain trajectory, not just its decisions.
    StateHash { nodes: u64, hash: u64 },
    /// Sub-stream delimiter in a merged trace: all following events until
    /// the next `Stream` belong to parallel worker/probe `id` (the II for
    /// sweep probes, the subproblem index for EPS).
    Stream { id: u32 },
    /// Search finished with `status` (as [`crate::SearchStatus`] renders).
    Done {
        status: &'static str,
        nodes: u64,
        fails: u64,
        solutions: u64,
    },
}

impl SearchEvent {
    /// Stable lower-case tag, used as the JSONL `event` field.
    pub fn kind(&self) -> &'static str {
        match self {
            SearchEvent::Start { .. } => "start",
            SearchEvent::Branch { .. } => "branch",
            SearchEvent::Fail { .. } => "fail",
            SearchEvent::Backtrack { .. } => "backtrack",
            SearchEvent::Solution { .. } => "solution",
            SearchEvent::BoundUpdate { .. } => "bound",
            SearchEvent::Restart { .. } => "restart",
            SearchEvent::DeadlineHit { .. } => "deadline",
            SearchEvent::NodeLimitHit { .. } => "node_limit",
            SearchEvent::Cancelled { .. } => "cancelled",
            SearchEvent::StateHash { .. } => "state_hash",
            SearchEvent::Stream { .. } => "stream",
            SearchEvent::Done { .. } => "done",
        }
    }

    /// One JSON object per event; no timestamps, so streams are
    /// reproducible byte-for-byte.
    pub fn to_json(&self) -> String {
        let kind = self.kind();
        match self {
            SearchEvent::Start { vars, propagators } => {
                format!("{{\"event\":\"{kind}\",\"vars\":{vars},\"propagators\":{propagators}}}")
            }
            SearchEvent::Branch { depth, var, val } => {
                format!("{{\"event\":\"{kind}\",\"depth\":{depth},\"var\":{var},\"val\":{val}}}")
            }
            SearchEvent::Fail { depth } | SearchEvent::Backtrack { depth } => {
                format!("{{\"event\":\"{kind}\",\"depth\":{depth}}}")
            }
            SearchEvent::Solution { objective, nodes } => match objective {
                Some(o) => {
                    format!("{{\"event\":\"{kind}\",\"objective\":{o},\"nodes\":{nodes}}}")
                }
                None => format!("{{\"event\":\"{kind}\",\"objective\":null,\"nodes\":{nodes}}}"),
            },
            SearchEvent::BoundUpdate { bound } | SearchEvent::Restart { bound } => {
                format!("{{\"event\":\"{kind}\",\"bound\":{bound}}}")
            }
            SearchEvent::DeadlineHit { nodes }
            | SearchEvent::NodeLimitHit { nodes }
            | SearchEvent::Cancelled { nodes } => {
                format!("{{\"event\":\"{kind}\",\"nodes\":{nodes}}}")
            }
            // The hash goes out as a hex string: JSON numbers are f64 and
            // would silently lose the top bits of a 64-bit digest.
            SearchEvent::StateHash { nodes, hash } => {
                format!("{{\"event\":\"{kind}\",\"nodes\":{nodes},\"hash\":\"{hash:016x}\"}}")
            }
            SearchEvent::Stream { id } => {
                format!("{{\"event\":\"{kind}\",\"id\":{id}}}")
            }
            SearchEvent::Done {
                status,
                nodes,
                fails,
                solutions,
            } => format!(
                "{{\"event\":\"{kind}\",\"status\":\"{status}\",\"nodes\":{nodes},\
                 \"fails\":{fails},\"solutions\":{solutions}}}"
            ),
        }
    }

    /// Parse one line as produced by [`SearchEvent::to_json`]. Returns
    /// `None` on anything the writer cannot have emitted (unknown event
    /// kinds, missing fields, malformed JSON), which makes the roundtrip
    /// `from_json(to_json(e)) == Some(e)` the parser's whole contract.
    pub fn from_json(line: &str) -> Option<SearchEvent> {
        let fields = parse_flat_json(line)?;
        let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let int = |key: &str| match get(key) {
            Some(JsonField::Int(n)) => Some(*n),
            _ => None,
        };
        let kind = match get("event") {
            Some(JsonField::Str(s)) => s.as_str(),
            _ => return None,
        };
        Some(match kind {
            "start" => SearchEvent::Start {
                vars: int("vars")? as usize,
                propagators: int("propagators")? as usize,
            },
            "branch" => SearchEvent::Branch {
                depth: int("depth")? as usize,
                var: int("var")? as u32,
                val: int("val")? as i32,
            },
            "fail" => SearchEvent::Fail {
                depth: int("depth")? as usize,
            },
            "backtrack" => SearchEvent::Backtrack {
                depth: int("depth")? as usize,
            },
            "solution" => SearchEvent::Solution {
                objective: match get("objective")? {
                    JsonField::Null => None,
                    JsonField::Int(n) => Some(*n as i32),
                    JsonField::Str(_) => return None,
                },
                nodes: int("nodes")? as u64,
            },
            "bound" => SearchEvent::BoundUpdate {
                bound: int("bound")? as i32,
            },
            "restart" => SearchEvent::Restart {
                bound: int("bound")? as i32,
            },
            "deadline" => SearchEvent::DeadlineHit {
                nodes: int("nodes")? as u64,
            },
            "node_limit" => SearchEvent::NodeLimitHit {
                nodes: int("nodes")? as u64,
            },
            "cancelled" => SearchEvent::Cancelled {
                nodes: int("nodes")? as u64,
            },
            "state_hash" => SearchEvent::StateHash {
                nodes: int("nodes")? as u64,
                hash: match get("hash")? {
                    JsonField::Str(s) => u64::from_str_radix(s, 16).ok()?,
                    _ => return None,
                },
            },
            "stream" => SearchEvent::Stream {
                id: int("id")? as u32,
            },
            "done" => SearchEvent::Done {
                status: match get("status")? {
                    // Interned back to the static statuses the solver emits.
                    JsonField::Str(s) => match s.as_str() {
                        "optimal" => "optimal",
                        "feasible" => "feasible",
                        "infeasible" => "infeasible",
                        "unknown" => "unknown",
                        _ => return None,
                    },
                    _ => return None,
                },
                nodes: int("nodes")? as u64,
                fails: int("fails")? as u64,
                solutions: int("solutions")? as u64,
            },
            _ => return None,
        })
    }
}

/// A flat JSON value as the event writer emits them: no nesting, no
/// floats, no escape sequences inside strings.
enum JsonField {
    Str(String),
    Int(i64),
    Null,
}

/// Minimal parser for the writer's own single-line flat objects. Not a
/// general JSON parser by design: it accepts exactly the shapes
/// [`SearchEvent::to_json`] produces.
fn parse_flat_json(line: &str) -> Option<Vec<(String, JsonField)>> {
    let mut rest = line.trim().strip_prefix('{')?.strip_suffix('}')?.trim();
    let mut fields = Vec::new();
    if rest.is_empty() {
        return Some(fields);
    }
    loop {
        rest = rest.trim_start().strip_prefix('"')?;
        let end = rest.find('"')?;
        let key = rest[..end].to_string();
        rest = rest[end + 1..].trim_start().strip_prefix(':')?.trim_start();
        if let Some(r) = rest.strip_prefix('"') {
            let end = r.find('"')?;
            if r[..end].contains('\\') {
                return None; // the writer never emits escapes
            }
            fields.push((key, JsonField::Str(r[..end].to_string())));
            rest = &r[end + 1..];
        } else if let Some(r) = rest.strip_prefix("null") {
            fields.push((key, JsonField::Null));
            rest = r;
        } else {
            let end = rest
                .find(|c: char| c != '-' && !c.is_ascii_digit())
                .unwrap_or(rest.len());
            fields.push((key, JsonField::Int(rest[..end].parse().ok()?)));
            rest = &rest[end..];
        }
        rest = rest.trim_start();
        if rest.is_empty() {
            return Some(fields);
        }
        rest = rest.strip_prefix(',')?;
    }
}

/// Receiver end of the event stream. Implementations must be cheap per
/// call — they run inside the search hot loop when tracing is on.
pub trait TraceSink: Send {
    fn record(&mut self, event: &SearchEvent);
    /// Push buffered output to its destination (end of search).
    fn flush(&mut self) {}
}

/// Sharing a sink between threads (portfolio racers) or keeping a handle
/// for post-run inspection: any `Arc<Mutex<Sink>>` is itself a sink.
impl<S: TraceSink> TraceSink for Arc<Mutex<S>> {
    fn record(&mut self, event: &SearchEvent) {
        self.lock().unwrap_or_else(|e| e.into_inner()).record(event);
    }
    fn flush(&mut self) {
        self.lock().unwrap_or_else(|e| e.into_inner()).flush();
    }
}

/// Cloneable, thread-safe handle the search carries. `None`-handle cost
/// is a branch; see the module docs.
#[derive(Clone)]
pub struct TraceHandle(Arc<Mutex<dyn TraceSink>>);

impl fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("TraceHandle(..)")
    }
}

impl TraceHandle {
    pub fn new(sink: impl TraceSink + 'static) -> Self {
        TraceHandle(Arc::new(Mutex::new(sink)))
    }

    #[inline]
    pub fn emit(&self, event: &SearchEvent) {
        self.0
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .record(event);
    }

    pub fn flush(&self) {
        self.0.lock().unwrap_or_else(|e| e.into_inner()).flush();
    }
}

/// Discards everything; exists so "tracing configured but off" has a
/// concrete, benchmarkable representative.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _event: &SearchEvent) {}
}

/// Event totals by kind.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EventCounts {
    pub starts: u64,
    pub branches: u64,
    pub fails: u64,
    pub backtracks: u64,
    pub solutions: u64,
    pub bounds: u64,
    pub restarts: u64,
    pub deadlines: u64,
    pub node_limits: u64,
    pub cancels: u64,
    pub state_hashes: u64,
    pub streams: u64,
    pub dones: u64,
}

impl EventCounts {
    pub fn bump(&mut self, event: &SearchEvent) {
        match event {
            SearchEvent::Start { .. } => self.starts += 1,
            SearchEvent::Branch { .. } => self.branches += 1,
            SearchEvent::Fail { .. } => self.fails += 1,
            SearchEvent::Backtrack { .. } => self.backtracks += 1,
            SearchEvent::Solution { .. } => self.solutions += 1,
            SearchEvent::BoundUpdate { .. } => self.bounds += 1,
            SearchEvent::Restart { .. } => self.restarts += 1,
            SearchEvent::DeadlineHit { .. } => self.deadlines += 1,
            SearchEvent::NodeLimitHit { .. } => self.node_limits += 1,
            SearchEvent::Cancelled { .. } => self.cancels += 1,
            SearchEvent::StateHash { .. } => self.state_hashes += 1,
            SearchEvent::Stream { .. } => self.streams += 1,
            SearchEvent::Done { .. } => self.dones += 1,
        }
    }

    pub fn total(&self) -> u64 {
        self.starts
            + self.branches
            + self.fails
            + self.backtracks
            + self.solutions
            + self.bounds
            + self.restarts
            + self.deadlines
            + self.node_limits
            + self.cancels
            + self.state_hashes
            + self.streams
            + self.dones
    }
}

/// Keeps totals for every event and a bounded ring of the most recent
/// ones. `capacity = 0` keeps totals only. Events the ring could not
/// retain — evicted oldest-first, or skipped entirely at capacity 0 —
/// are tallied in [`MemorySink::dropped`], so a bounded sink on a
/// multi-minute solve reports exactly how much history it shed instead
/// of growing without limit.
#[derive(Debug, Default)]
pub struct MemorySink {
    capacity: usize,
    pub events: VecDeque<SearchEvent>,
    pub counts: EventCounts,
    /// Events seen but no longer (or never) held in `events`.
    pub dropped: u64,
}

impl MemorySink {
    pub fn new(capacity: usize) -> Self {
        MemorySink {
            capacity,
            events: VecDeque::new(),
            counts: EventCounts::default(),
            dropped: 0,
        }
    }

    /// Ring large enough that nothing is evicted in practice.
    pub fn unbounded() -> Self {
        Self::new(usize::MAX)
    }
}

impl TraceSink for MemorySink {
    fn record(&mut self, event: &SearchEvent) {
        self.counts.bump(event);
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() >= self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event.clone());
    }
}

/// Streams one JSON object per line to any writer.
pub struct JsonlSink<W: Write + Send> {
    out: W,
}

impl JsonlSink<BufWriter<File>> {
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlSink {
            out: BufWriter::new(File::create(path)?),
        })
    }
}

impl<W: Write + Send> JsonlSink<W> {
    pub fn new(out: W) -> Self {
        JsonlSink { out }
    }
}

impl<W: Write + Send> TraceSink for JsonlSink<W> {
    fn record(&mut self, event: &SearchEvent) {
        // An I/O error mid-search must not kill the solve; drop the line.
        let _ = writeln!(self.out, "{}", event.to_json());
    }
    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

/// Throttled human progress on stderr: incumbents and restarts print
/// immediately, everything else at most once per interval.
pub struct ProgressSink {
    every: Duration,
    last: Instant,
    counts: EventCounts,
}

impl ProgressSink {
    pub fn new(every: Duration) -> Self {
        ProgressSink {
            every,
            last: Instant::now(),
            counts: EventCounts::default(),
        }
    }

    fn line(&self) -> String {
        format!(
            "[search] branches={} fails={} solutions={} restarts={}",
            self.counts.branches, self.counts.fails, self.counts.solutions, self.counts.restarts
        )
    }
}

impl Default for ProgressSink {
    fn default() -> Self {
        Self::new(Duration::from_millis(250))
    }
}

impl TraceSink for ProgressSink {
    fn record(&mut self, event: &SearchEvent) {
        self.counts.bump(event);
        match event {
            SearchEvent::Solution { objective, nodes } => {
                eprintln!("[search] incumbent objective={objective:?} at node {nodes}");
                self.last = Instant::now();
            }
            SearchEvent::Restart { bound } => {
                eprintln!("[search] restart under bound {bound}");
                self.last = Instant::now();
            }
            SearchEvent::Done {
                status,
                nodes,
                fails,
                solutions,
            } => {
                eprintln!(
                    "[search] done: {status} nodes={nodes} fails={fails} solutions={solutions}"
                );
            }
            _ => {
                if self.last.elapsed() >= self.every {
                    eprintln!("{}", self.line());
                    self.last = Instant::now();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_counts_and_rings() {
        let mut sink = MemorySink::new(2);
        for depth in 0..5 {
            sink.record(&SearchEvent::Fail { depth });
        }
        assert_eq!(sink.counts.fails, 5);
        assert_eq!(sink.events.len(), 2);
        assert_eq!(sink.events[0], SearchEvent::Fail { depth: 3 });
        assert_eq!(sink.events[1], SearchEvent::Fail { depth: 4 });
        assert_eq!(sink.dropped, 3);
    }

    #[test]
    fn capacity_zero_keeps_totals_and_counts_drops() {
        let mut sink = MemorySink::new(0);
        for depth in 0..4 {
            sink.record(&SearchEvent::Fail { depth });
        }
        assert_eq!(sink.counts.fails, 4);
        assert!(sink.events.is_empty());
        assert_eq!(sink.dropped, 4);
    }

    #[test]
    fn jsonl_lines_are_well_formed() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(&SearchEvent::Start {
            vars: 3,
            propagators: 2,
        });
        sink.record(&SearchEvent::Branch {
            depth: 1,
            var: 0,
            val: 7,
        });
        sink.record(&SearchEvent::Solution {
            objective: Some(4),
            nodes: 9,
        });
        sink.record(&SearchEvent::Solution {
            objective: None,
            nodes: 10,
        });
        sink.record(&SearchEvent::Done {
            status: "optimal",
            nodes: 9,
            fails: 2,
            solutions: 1,
        });
        sink.flush();
        let text = String::from_utf8(sink.out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        for line in &lines {
            assert!(
                line.starts_with('{') && line.ends_with('}'),
                "bad line {line}"
            );
            assert!(line.contains("\"event\":\""));
        }
        assert_eq!(
            lines[1],
            "{\"event\":\"branch\",\"depth\":1,\"var\":0,\"val\":7}"
        );
        assert_eq!(
            lines[3],
            "{\"event\":\"solution\",\"objective\":null,\"nodes\":10}"
        );
    }

    #[test]
    fn shared_sink_is_inspectable_through_the_arc() {
        let shared = Arc::new(Mutex::new(MemorySink::unbounded()));
        let handle = TraceHandle::new(Arc::clone(&shared));
        handle.emit(&SearchEvent::Fail { depth: 1 });
        handle.emit(&SearchEvent::Backtrack { depth: 0 });
        let sink = shared.lock().unwrap();
        assert_eq!(sink.counts.total(), 2);
        assert_eq!(sink.counts.backtracks, 1);
    }
}
