//! Structured search tracing: typed events, pluggable sinks, and a
//! cheap-when-off handle threaded through the search drivers.
//!
//! The solver emits a [`SearchEvent`] at every decision, failure,
//! backtrack, incumbent, restart and budget abort. Sinks decide what to
//! do with the stream: drop it ([`NullSink`]), keep a bounded ring of
//! recent events plus totals ([`MemorySink`]), stream JSON lines to a
//! writer ([`JsonlSink`]), or print a throttled progress line to stderr
//! ([`ProgressSink`]).
//!
//! Cost model: with no sink configured the per-event cost is a single
//! `Option` discriminant check — the event value is never even
//! constructed (the emit path takes a closure). With a sink configured,
//! each event takes one uncontended mutex lock plus whatever the sink
//! does. Events carry no timestamps, so a fixed model always produces an
//! identical stream — which is what the determinism tests pin down. The
//! event-driven propagation engine keeps that property: priority tiers
//! drain lowest-first, each tier is FIFO, and wake tags are sorted before
//! delivery, so the propagator execution order (and hence the search tree
//! and this stream) is a pure function of the model.

use std::collections::VecDeque;
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One step of the search, in the order the solver took it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SearchEvent {
    /// Search began: model shape at the root.
    Start { vars: usize, propagators: usize },
    /// A decision was posted: `var` constrained toward `val` at `depth`.
    /// For enumeration branchers `val` is the tried value; for splits it
    /// is the half's boundary (`≤ mid` first, then `≥ mid+1`).
    Branch { depth: usize, var: u32, val: i32 },
    /// Propagation refuted the current node.
    Fail { depth: usize },
    /// The solver returned to `depth` after exhausting a subtree.
    Backtrack { depth: usize },
    /// A (new incumbent) solution was found.
    Solution { objective: Option<i32>, nodes: u64 },
    /// The branch-and-bound upper bound tightened to `bound`.
    BoundUpdate { bound: i32 },
    /// Restart-based BnB re-dove from the root under `bound`.
    Restart { bound: i32 },
    /// The wall-clock deadline fired after `nodes` nodes.
    DeadlineHit { nodes: u64 },
    /// The node budget was exhausted.
    NodeLimitHit { nodes: u64 },
    /// A cooperative cancellation token stopped the search.
    Cancelled { nodes: u64 },
    /// Search finished with `status` (as [`crate::SearchStatus`] renders).
    Done {
        status: &'static str,
        nodes: u64,
        fails: u64,
        solutions: u64,
    },
}

impl SearchEvent {
    /// Stable lower-case tag, used as the JSONL `event` field.
    pub fn kind(&self) -> &'static str {
        match self {
            SearchEvent::Start { .. } => "start",
            SearchEvent::Branch { .. } => "branch",
            SearchEvent::Fail { .. } => "fail",
            SearchEvent::Backtrack { .. } => "backtrack",
            SearchEvent::Solution { .. } => "solution",
            SearchEvent::BoundUpdate { .. } => "bound",
            SearchEvent::Restart { .. } => "restart",
            SearchEvent::DeadlineHit { .. } => "deadline",
            SearchEvent::NodeLimitHit { .. } => "node_limit",
            SearchEvent::Cancelled { .. } => "cancelled",
            SearchEvent::Done { .. } => "done",
        }
    }

    /// One JSON object per event; no timestamps, so streams are
    /// reproducible byte-for-byte.
    pub fn to_json(&self) -> String {
        let kind = self.kind();
        match self {
            SearchEvent::Start { vars, propagators } => {
                format!("{{\"event\":\"{kind}\",\"vars\":{vars},\"propagators\":{propagators}}}")
            }
            SearchEvent::Branch { depth, var, val } => {
                format!("{{\"event\":\"{kind}\",\"depth\":{depth},\"var\":{var},\"val\":{val}}}")
            }
            SearchEvent::Fail { depth } | SearchEvent::Backtrack { depth } => {
                format!("{{\"event\":\"{kind}\",\"depth\":{depth}}}")
            }
            SearchEvent::Solution { objective, nodes } => match objective {
                Some(o) => {
                    format!("{{\"event\":\"{kind}\",\"objective\":{o},\"nodes\":{nodes}}}")
                }
                None => format!("{{\"event\":\"{kind}\",\"objective\":null,\"nodes\":{nodes}}}"),
            },
            SearchEvent::BoundUpdate { bound } | SearchEvent::Restart { bound } => {
                format!("{{\"event\":\"{kind}\",\"bound\":{bound}}}")
            }
            SearchEvent::DeadlineHit { nodes }
            | SearchEvent::NodeLimitHit { nodes }
            | SearchEvent::Cancelled { nodes } => {
                format!("{{\"event\":\"{kind}\",\"nodes\":{nodes}}}")
            }
            SearchEvent::Done {
                status,
                nodes,
                fails,
                solutions,
            } => format!(
                "{{\"event\":\"{kind}\",\"status\":\"{status}\",\"nodes\":{nodes},\
                 \"fails\":{fails},\"solutions\":{solutions}}}"
            ),
        }
    }
}

/// Receiver end of the event stream. Implementations must be cheap per
/// call — they run inside the search hot loop when tracing is on.
pub trait TraceSink: Send {
    fn record(&mut self, event: &SearchEvent);
    /// Push buffered output to its destination (end of search).
    fn flush(&mut self) {}
}

/// Sharing a sink between threads (portfolio racers) or keeping a handle
/// for post-run inspection: any `Arc<Mutex<Sink>>` is itself a sink.
impl<S: TraceSink> TraceSink for Arc<Mutex<S>> {
    fn record(&mut self, event: &SearchEvent) {
        self.lock().unwrap_or_else(|e| e.into_inner()).record(event);
    }
    fn flush(&mut self) {
        self.lock().unwrap_or_else(|e| e.into_inner()).flush();
    }
}

/// Cloneable, thread-safe handle the search carries. `None`-handle cost
/// is a branch; see the module docs.
#[derive(Clone)]
pub struct TraceHandle(Arc<Mutex<dyn TraceSink>>);

impl fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("TraceHandle(..)")
    }
}

impl TraceHandle {
    pub fn new(sink: impl TraceSink + 'static) -> Self {
        TraceHandle(Arc::new(Mutex::new(sink)))
    }

    #[inline]
    pub fn emit(&self, event: &SearchEvent) {
        self.0
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .record(event);
    }

    pub fn flush(&self) {
        self.0.lock().unwrap_or_else(|e| e.into_inner()).flush();
    }
}

/// Discards everything; exists so "tracing configured but off" has a
/// concrete, benchmarkable representative.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _event: &SearchEvent) {}
}

/// Event totals by kind.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EventCounts {
    pub starts: u64,
    pub branches: u64,
    pub fails: u64,
    pub backtracks: u64,
    pub solutions: u64,
    pub bounds: u64,
    pub restarts: u64,
    pub deadlines: u64,
    pub node_limits: u64,
    pub cancels: u64,
    pub dones: u64,
}

impl EventCounts {
    pub fn bump(&mut self, event: &SearchEvent) {
        match event {
            SearchEvent::Start { .. } => self.starts += 1,
            SearchEvent::Branch { .. } => self.branches += 1,
            SearchEvent::Fail { .. } => self.fails += 1,
            SearchEvent::Backtrack { .. } => self.backtracks += 1,
            SearchEvent::Solution { .. } => self.solutions += 1,
            SearchEvent::BoundUpdate { .. } => self.bounds += 1,
            SearchEvent::Restart { .. } => self.restarts += 1,
            SearchEvent::DeadlineHit { .. } => self.deadlines += 1,
            SearchEvent::NodeLimitHit { .. } => self.node_limits += 1,
            SearchEvent::Cancelled { .. } => self.cancels += 1,
            SearchEvent::Done { .. } => self.dones += 1,
        }
    }

    pub fn total(&self) -> u64 {
        self.starts
            + self.branches
            + self.fails
            + self.backtracks
            + self.solutions
            + self.bounds
            + self.restarts
            + self.deadlines
            + self.node_limits
            + self.cancels
            + self.dones
    }
}

/// Keeps totals for every event and a bounded ring of the most recent
/// ones. `capacity = 0` keeps totals only.
#[derive(Debug, Default)]
pub struct MemorySink {
    capacity: usize,
    pub events: VecDeque<SearchEvent>,
    pub counts: EventCounts,
}

impl MemorySink {
    pub fn new(capacity: usize) -> Self {
        MemorySink {
            capacity,
            events: VecDeque::new(),
            counts: EventCounts::default(),
        }
    }

    /// Ring large enough that nothing is evicted in practice.
    pub fn unbounded() -> Self {
        Self::new(usize::MAX)
    }
}

impl TraceSink for MemorySink {
    fn record(&mut self, event: &SearchEvent) {
        self.counts.bump(event);
        if self.capacity == 0 {
            return;
        }
        if self.events.len() >= self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(event.clone());
    }
}

/// Streams one JSON object per line to any writer.
pub struct JsonlSink<W: Write + Send> {
    out: W,
}

impl JsonlSink<BufWriter<File>> {
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlSink {
            out: BufWriter::new(File::create(path)?),
        })
    }
}

impl<W: Write + Send> JsonlSink<W> {
    pub fn new(out: W) -> Self {
        JsonlSink { out }
    }
}

impl<W: Write + Send> TraceSink for JsonlSink<W> {
    fn record(&mut self, event: &SearchEvent) {
        // An I/O error mid-search must not kill the solve; drop the line.
        let _ = writeln!(self.out, "{}", event.to_json());
    }
    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

/// Throttled human progress on stderr: incumbents and restarts print
/// immediately, everything else at most once per interval.
pub struct ProgressSink {
    every: Duration,
    last: Instant,
    counts: EventCounts,
}

impl ProgressSink {
    pub fn new(every: Duration) -> Self {
        ProgressSink {
            every,
            last: Instant::now(),
            counts: EventCounts::default(),
        }
    }

    fn line(&self) -> String {
        format!(
            "[search] branches={} fails={} solutions={} restarts={}",
            self.counts.branches, self.counts.fails, self.counts.solutions, self.counts.restarts
        )
    }
}

impl Default for ProgressSink {
    fn default() -> Self {
        Self::new(Duration::from_millis(250))
    }
}

impl TraceSink for ProgressSink {
    fn record(&mut self, event: &SearchEvent) {
        self.counts.bump(event);
        match event {
            SearchEvent::Solution { objective, nodes } => {
                eprintln!("[search] incumbent objective={objective:?} at node {nodes}");
                self.last = Instant::now();
            }
            SearchEvent::Restart { bound } => {
                eprintln!("[search] restart under bound {bound}");
                self.last = Instant::now();
            }
            SearchEvent::Done {
                status,
                nodes,
                fails,
                solutions,
            } => {
                eprintln!(
                    "[search] done: {status} nodes={nodes} fails={fails} solutions={solutions}"
                );
            }
            _ => {
                if self.last.elapsed() >= self.every {
                    eprintln!("{}", self.line());
                    self.last = Instant::now();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_counts_and_rings() {
        let mut sink = MemorySink::new(2);
        for depth in 0..5 {
            sink.record(&SearchEvent::Fail { depth });
        }
        assert_eq!(sink.counts.fails, 5);
        assert_eq!(sink.events.len(), 2);
        assert_eq!(sink.events[0], SearchEvent::Fail { depth: 3 });
        assert_eq!(sink.events[1], SearchEvent::Fail { depth: 4 });
    }

    #[test]
    fn jsonl_lines_are_well_formed() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(&SearchEvent::Start {
            vars: 3,
            propagators: 2,
        });
        sink.record(&SearchEvent::Branch {
            depth: 1,
            var: 0,
            val: 7,
        });
        sink.record(&SearchEvent::Solution {
            objective: Some(4),
            nodes: 9,
        });
        sink.record(&SearchEvent::Solution {
            objective: None,
            nodes: 10,
        });
        sink.record(&SearchEvent::Done {
            status: "optimal",
            nodes: 9,
            fails: 2,
            solutions: 1,
        });
        sink.flush();
        let text = String::from_utf8(sink.out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        for line in &lines {
            assert!(
                line.starts_with('{') && line.ends_with('}'),
                "bad line {line}"
            );
            assert!(line.contains("\"event\":\""));
        }
        assert_eq!(
            lines[1],
            "{\"event\":\"branch\",\"depth\":1,\"var\":0,\"val\":7}"
        );
        assert_eq!(
            lines[3],
            "{\"event\":\"solution\",\"objective\":null,\"nodes\":10}"
        );
    }

    #[test]
    fn shared_sink_is_inspectable_through_the_arc() {
        let shared = Arc::new(Mutex::new(MemorySink::unbounded()));
        let handle = TraceHandle::new(Arc::clone(&shared));
        handle.emit(&SearchEvent::Fail { depth: 1 });
        handle.emit(&SearchEvent::Backtrack { depth: 0 });
        let sink = shared.lock().unwrap();
        assert_eq!(sink.counts.total(), 2);
        assert_eq!(sink.counts.backtracks, 1);
    }
}
