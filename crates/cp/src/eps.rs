//! Embarrassingly-parallel search (EPS) inside a single hard instance.
//!
//! The portfolio ([`crate::portfolio`]) parallelizes across *heuristics*;
//! EPS parallelizes across the *tree*: the root CSP is decomposed into
//! many subproblems by fixing a prefix of branching decisions (30–100×
//! more subproblems than workers, so the pool self-balances), and a
//! worker pool drains them in order. Régin, Rezgui & Malapert ("EPS",
//! CP'13) observed that with enough subproblems the per-subproblem
//! solve-time variance averages out and near-linear speedups follow
//! without any work stealing.
//!
//! # Determinism contract
//!
//! Subproblems are generated in **lexicographic branching order**: the
//! splitter picks variables with the exact DFS heuristic
//! (`select_phase_var`) and emits children in the phase's value order, so
//! the concatenation of subproblem subtrees *is* the sequential DFS tree.
//! For satisfaction search the winner is the **lowest-index** subproblem
//! containing a solution; every index below it is refuted to completion
//! before the result is trusted (`completed`), hence the returned
//! solution is byte-identical to the sequential first solution no matter
//! how many workers run or how the OS schedules them. Subproblems above
//! the winner are cancelled via [`CancelToken`] — their statistics vary
//! run-to-run (they are reported per-outcome so callers can segregate
//! them from deterministic fields), but the *answer* never does.
//!
//! For minimization ([`eps_minimize`]) the optimum *value* is already
//! deterministic with a shared incumbent bound (a subproblem holding the
//! global optimum can only be pruned by an equal-valued incumbent), but
//! the witness is not; a second pass re-solves under `obj ≤ v*` as a
//! satisfaction EPS, making the witness the lexicographically-first
//! optimal solution.

use crate::cancel::CancelToken;
use crate::model::Model;
use crate::search::{
    minimize, select_phase_var, solve, SearchConfig, SearchResult, SearchStats, SearchStatus,
    ValSel,
};
use crate::store::VarId;
use crate::trace::{MemorySink, SearchEvent, TraceHandle};
use std::sync::atomic::{AtomicI32, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One replayable branching decision, applied at the root of a fresh
/// model copy followed by a propagation fixpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decision {
    /// `var = val` — a value-enumeration child (Min/Max phases).
    Fix(VarId, i32),
    /// `var ≤ val` — the lower half of a split.
    Leq(VarId, i32),
    /// `var ≥ val` — the upper half of a split.
    Geq(VarId, i32),
}

/// A subproblem: the root CSP plus a prefix of branching decisions.
#[derive(Clone, Debug, Default)]
pub struct Subproblem {
    pub decisions: Vec<Decision>,
}

impl Subproblem {
    fn child(&self, d: Decision) -> Subproblem {
        let mut decisions = Vec::with_capacity(self.decisions.len() + 1);
        decisions.extend_from_slice(&self.decisions);
        decisions.push(d);
        Subproblem { decisions }
    }
}

/// Knobs for the decomposition and the worker pool.
#[derive(Clone, Debug)]
pub struct EpsConfig {
    /// Worker threads draining the subproblem queue.
    pub jobs: usize,
    /// Target subproblem count ≈ `split_factor × jobs`. The classic EPS
    /// sweet spot is 30–100 subproblems per worker.
    pub split_factor: usize,
    /// Hard cap on decision-prefix length; the splitter stops expanding
    /// once every frontier node is this deep.
    pub max_split_depth: usize,
    /// Value-enumeration width above which the splitter bisects the
    /// domain instead of emitting one child per value, so a single wide
    /// variable cannot explode the frontier.
    pub max_enum_width: usize,
    /// First-SAT racing: the first solution found anywhere cancels
    /// *every* other subproblem (not just higher indices) and the pass
    /// returns immediately with status `Feasible`. This trades the
    /// lexicographic-witness guarantee for latency — the *answer* is
    /// still a genuine solution, but *which* one varies run-to-run.
    /// Off by default; the canonical mode refutes everything below the
    /// winner before trusting it.
    pub race: bool,
}

impl Default for EpsConfig {
    fn default() -> Self {
        EpsConfig {
            jobs: 4,
            split_factor: 30,
            max_split_depth: 12,
            max_enum_width: 16,
            race: false,
        }
    }
}

/// What happened to one subproblem, in lexicographic order.
#[derive(Clone, Copy, Debug)]
pub struct SubproblemOutcome {
    pub index: usize,
    pub status: SearchStatus,
    pub objective: Option<i32>,
    /// Subtree exhausted (refutation or optimality proof is trustworthy).
    pub completed: bool,
    /// Stopped by the pool because a lower-index subproblem already won.
    pub cancelled: bool,
    /// Worker that ran it (informational; varies run-to-run).
    pub worker: usize,
    pub stats: SearchStats,
}

/// Per-worker accounting (informational; assignment varies run-to-run).
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkerStats {
    pub subproblems: u64,
    pub nodes: u64,
    pub fails: u64,
    pub busy: std::time::Duration,
}

/// Full accounting for one EPS run.
#[derive(Clone, Debug)]
pub struct EpsReport {
    /// Subproblems handed to the pool (after split-time refutations).
    pub subproblems: usize,
    /// Deepest decision prefix the splitter produced.
    pub split_depth: usize,
    /// Subproblems refuted during splitting (never reached the pool).
    pub split_pruned: u64,
    /// Winning subproblem index (lexicographic), if any solution.
    pub winner: Option<usize>,
    /// One entry per subproblem, sorted by index.
    pub outcomes: Vec<SubproblemOutcome>,
    /// One entry per worker.
    pub workers: Vec<WorkerStats>,
}

/// A closure building a fresh model + search config. Models own boxed
/// propagators and are not `Clone`, so — like the portfolio — EPS
/// rebuilds the model per subproblem.
pub type EpsBuilder<'a> = dyn Fn() -> (Model, SearchConfig) + Sync + 'a;

/// Apply one decision and run propagation to fixpoint; `false` = refuted.
fn apply(model: &mut Model, d: Decision) -> bool {
    let ok = match d {
        Decision::Fix(v, x) => model.store.fix(v, x).is_ok(),
        Decision::Leq(v, x) => model.store.remove_above(v, x).is_ok(),
        Decision::Geq(v, x) => model.store.remove_below(v, x).is_ok(),
    };
    ok && model.engine.fixpoint(&mut model.store).is_ok()
}

fn replay(model: &mut Model, sp: &Subproblem) -> bool {
    sp.decisions.iter().all(|&d| apply(model, d))
}

/// Level-synchronous breadth-first decomposition. Each pass replays every
/// frontier prefix on `model` (under a backtrack level), branches it one
/// decision deeper with the DFS heuristics, and drops refuted children.
/// Children are emitted in the phase's value order and replace their
/// parent in place, so the frontier stays in lexicographic DFS order by
/// construction. Returns `(subproblems, refuted_during_split, depth)`.
fn split(
    model: &mut Model,
    config: &SearchConfig,
    target: usize,
    eps: &EpsConfig,
) -> (Vec<Subproblem>, u64, usize) {
    let phases = &config.phases;
    let mut frontier = vec![Subproblem::default()];
    let mut pruned = 0u64;
    let mut depth = 0usize;
    while frontier.len() < target && depth < eps.max_split_depth {
        let mut next = Vec::with_capacity(frontier.len() * 2);
        let mut expanded = false;
        for sp in frontier.drain(..) {
            model.store.push_level();
            if !replay(model, &sp) {
                pruned += 1;
                model.store.pop_level();
                continue;
            }
            match select_phase_var(&model.store, phases) {
                // Fully fixed already: a (trivial) subproblem of its own.
                None => next.push(sp),
                Some((pi, var)) => {
                    expanded = true;
                    let dom = model.store.dom(var);
                    let wide = dom.size() > eps.max_enum_width as u64;
                    match phases[pi].val_sel {
                        // Bisection keeps the value order of the phase:
                        // Min explores the low half first, Max the high.
                        ValSel::Min if wide => {
                            let mid = dom.split_point();
                            next.push(sp.child(Decision::Leq(var, mid)));
                            next.push(sp.child(Decision::Geq(var, mid + 1)));
                        }
                        ValSel::Max if wide => {
                            let mid = dom.split_point();
                            next.push(sp.child(Decision::Geq(var, mid + 1)));
                            next.push(sp.child(Decision::Leq(var, mid)));
                        }
                        ValSel::Min => {
                            for v in dom.iter().collect::<Vec<_>>() {
                                next.push(sp.child(Decision::Fix(var, v)));
                            }
                        }
                        ValSel::Max => {
                            let mut vals: Vec<i32> = dom.iter().collect();
                            vals.reverse();
                            for v in vals {
                                next.push(sp.child(Decision::Fix(var, v)));
                            }
                        }
                        ValSel::Split => {
                            let mid = dom.split_point();
                            next.push(sp.child(Decision::Leq(var, mid)));
                            next.push(sp.child(Decision::Geq(var, mid + 1)));
                        }
                    }
                }
            }
            model.store.pop_level();
        }
        frontier = next;
        depth += 1;
        if !expanded {
            break;
        }
    }
    (frontier, pruned, depth)
}

fn refuted_at_replay() -> SearchResult {
    SearchResult {
        status: SearchStatus::Infeasible,
        best: None,
        objective: None,
        stats: SearchStats::default(),
        completed: true,
        cancelled: false,
    }
}

/// The shared pool state for one satisfaction pass.
struct Pool<'a> {
    subs: &'a [Subproblem],
    tokens: Vec<CancelToken>,
    next: AtomicUsize,
    /// Lowest subproblem index known to contain a solution.
    first_sat: AtomicUsize,
    /// Global wall-clock deadline for the whole pass: the builder's
    /// `timeout` bounds the *entire* EPS run, not each subproblem —
    /// otherwise a 30×-decomposed instance could run 30× its budget.
    deadline: Option<Instant>,
    /// First-SAT racing ([`EpsConfig::race`]): a win cancels everything.
    race: bool,
    results: Mutex<Vec<(usize, usize, SearchResult)>>, // (index, worker, result)
    /// Buffered per-subproblem event streams (when the builder's config
    /// carries a trace), re-emitted in index order after the pool.
    traces: Mutex<Vec<(usize, Vec<SearchEvent>)>>,
    /// The builder's original sink, captured from the first subproblem
    /// that ran (every builder call clones the same underlying handle).
    original_trace: Mutex<Option<TraceHandle>>,
}

impl<'a> Pool<'a> {
    fn new(subs: &'a [Subproblem], deadline: Option<Instant>, race: bool) -> Self {
        Pool {
            subs,
            tokens: subs.iter().map(|_| CancelToken::new()).collect(),
            next: AtomicUsize::new(0),
            first_sat: AtomicUsize::new(usize::MAX),
            deadline,
            race,
            results: Mutex::new(Vec::new()),
            traces: Mutex::new(Vec::new()),
            original_trace: Mutex::new(None),
        }
    }

    fn record(&self, index: usize, worker: usize, r: SearchResult) {
        self.results
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push((index, worker, r));
    }

    /// Claim the win for `index`; cancels every higher in-flight index.
    /// Lower indices keep running — the contract needs them refuted —
    /// unless racing, where the first win stops the whole pool and the
    /// merge reports a non-canonical `Feasible`.
    fn claim_sat(&self, index: usize) {
        let prev = self.first_sat.fetch_min(index, Ordering::AcqRel);
        if index < prev {
            for t in &self.tokens[index + 1..] {
                t.cancel();
            }
        }
        if self.race {
            for (j, t) in self.tokens.iter().enumerate() {
                if j != index {
                    t.cancel();
                }
            }
        }
    }

    /// Worker loop: claim indices bottom-up; solve each subproblem on a
    /// fresh model; skip (as cancelled) indices above the current winner.
    fn work(
        &self,
        worker: usize,
        builder: &EpsBuilder<'_>,
        outer_cancel: Option<&CancelToken>,
        extra: &[Decision],
    ) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.subs.len() {
                return;
            }
            if outer_cancel.is_some_and(|c| c.is_cancelled()) {
                for t in &self.tokens {
                    t.cancel();
                }
            }
            if i > self.first_sat.load(Ordering::Acquire) || self.tokens[i].is_cancelled() {
                let mut r = refuted_at_replay();
                r.status = SearchStatus::Unknown;
                r.completed = false;
                r.cancelled = true;
                self.record(i, worker, r);
                continue;
            }
            let remaining = self
                .deadline
                .map(|dl| dl.saturating_duration_since(Instant::now()));
            if remaining.is_some_and(|r| r.is_zero()) {
                let mut r = refuted_at_replay();
                r.status = SearchStatus::Unknown;
                r.completed = false;
                self.record(i, worker, r);
                continue;
            }
            let (mut model, mut cfg) = builder();
            cfg.cancel = Some(self.tokens[i].clone());
            // Forwarding live events would interleave workers
            // nondeterministically, so each subproblem records into its
            // own buffer; `forward_traces` re-emits them in index order
            // behind `Stream { id: index }` markers after the pool.
            let buffer = cfg.trace.take().map(|original| {
                let mut slot = self
                    .original_trace
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                slot.get_or_insert(original);
                drop(slot);
                let sink = Arc::new(Mutex::new(MemorySink::unbounded()));
                cfg.trace = Some(TraceHandle::new(Arc::clone(&sink)));
                sink
            });
            if let Some(rem) = remaining {
                cfg.timeout = Some(cfg.timeout.map_or(rem, |t| t.min(rem)));
            }
            let consistent =
                replay(&mut model, &self.subs[i]) && extra.iter().all(|&d| apply(&mut model, d));
            let r = if consistent {
                solve(&mut model, &cfg)
            } else {
                refuted_at_replay()
            };
            if let Some(sink) = buffer {
                // A prefix refuted during replay never searched: it still
                // gets an (empty) stream so the merged trace covers every
                // subproblem index deterministically.
                let events: Vec<SearchEvent> = sink
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .events
                    .drain(..)
                    .collect();
                self.traces
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push((i, events));
            }
            if r.is_sat() {
                self.claim_sat(i);
            }
            self.record(i, worker, r);
        }
    }

    /// Re-emit the buffered per-subproblem streams to the builder's
    /// original sink, in index order, each preceded by a
    /// [`SearchEvent::Stream`] marker carrying the subproblem index.
    /// Streams above the winning index are dropped: those subproblems
    /// were cancelled mid-flight and their event counts vary run-to-run,
    /// while everything up to the winner is refuted (or solved) to
    /// completion and therefore identical under any `jobs` count.
    fn forward_traces(&self) {
        let Some(handle) = self
            .original_trace
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
        else {
            return;
        };
        let winner = {
            let results = self.results.lock().unwrap_or_else(|e| e.into_inner());
            results
                .iter()
                .filter(|(_, _, r)| r.is_sat())
                .map(|(i, _, _)| *i)
                .min()
        };
        let mut traces = self.traces.lock().unwrap_or_else(|e| e.into_inner());
        traces.sort_by_key(|(i, _)| *i);
        for (i, events) in traces.iter() {
            if winner.is_some_and(|w| *i > w) {
                continue;
            }
            handle.emit(&SearchEvent::Stream { id: *i as u32 });
            for e in events {
                handle.emit(e);
            }
        }
        handle.flush();
    }
}

/// Merge pool results into (result, report) under the lex-first-SAT rule.
fn merge_satisfaction(
    pool: Pool<'_>,
    split_pruned: u64,
    split_depth: usize,
    jobs: usize,
    t0: Instant,
) -> (SearchResult, EpsReport) {
    let mut raw = pool.results.into_inner().unwrap_or_else(|e| e.into_inner());
    raw.sort_by_key(|(idx, _, _)| *idx);

    let winner = raw
        .iter()
        .position(|(_, _, r)| r.is_sat())
        .map(|p| raw[p].0);
    // The winner is canonical only once everything below it is refuted to
    // completion; a timeout below the winner means "a solution, but maybe
    // not the sequential-first one".
    let below_complete = |w: usize| {
        raw.iter()
            .take_while(|(i, _, _)| *i < w)
            .all(|(_, _, r)| r.completed && !r.is_sat())
    };

    let mut workers = vec![WorkerStats::default(); jobs];
    let mut outcomes = Vec::with_capacity(raw.len());
    let mut stats = SearchStats::default();
    for (idx, w, r) in &raw {
        stats.nodes += r.stats.nodes;
        stats.fails += r.stats.fails;
        stats.solutions += r.stats.solutions;
        stats.propagations += r.stats.propagations;
        stats.max_depth = stats.max_depth.max(r.stats.max_depth);
        if let Some(ws) = workers.get_mut(*w) {
            ws.subproblems += 1;
            ws.nodes += r.stats.nodes;
            ws.fails += r.stats.fails;
            ws.busy += r.stats.time;
        }
        outcomes.push(SubproblemOutcome {
            index: *idx,
            status: r.status,
            objective: r.objective,
            completed: r.completed,
            cancelled: r.cancelled,
            worker: *w,
            stats: r.stats,
        });
    }
    stats.time = t0.elapsed();

    let result = match winner {
        Some(wi) => {
            let canonical = below_complete(wi);
            let pos = raw.iter().position(|(i, _, _)| *i == wi).unwrap();
            let (_, _, win) = raw.swap_remove(pos);
            SearchResult {
                status: if canonical {
                    SearchStatus::Optimal
                } else {
                    SearchStatus::Feasible
                },
                best: win.best,
                objective: win.objective,
                stats,
                completed: canonical,
                cancelled: false,
            }
        }
        None => {
            let all_complete = raw.iter().all(|(_, _, r)| r.completed);
            let any_cancelled = raw.iter().any(|(_, _, r)| r.cancelled);
            SearchResult {
                status: if all_complete {
                    SearchStatus::Infeasible
                } else {
                    SearchStatus::Unknown
                },
                best: None,
                objective: None,
                stats,
                completed: all_complete,
                cancelled: any_cancelled,
            }
        }
    };
    let report = EpsReport {
        subproblems: pool.subs.len(),
        split_depth,
        split_pruned,
        winner,
        outcomes,
        workers,
    };
    (result, report)
}

/// Bookkeeping threaded from the decomposition into one pool pass.
struct PassCtx {
    split_pruned: u64,
    split_depth: usize,
    t0: Instant,
    /// Global deadline derived from the builder's `timeout` at pass start.
    deadline: Option<Instant>,
}

fn run_satisfaction_pool(
    builder: &EpsBuilder<'_>,
    subs: &[Subproblem],
    eps: &EpsConfig,
    outer_cancel: Option<&CancelToken>,
    extra: &[Decision],
    ctx: PassCtx,
) -> (SearchResult, EpsReport) {
    let pool = Pool::new(subs, ctx.deadline, eps.race);
    let jobs = eps.jobs.max(1);
    std::thread::scope(|scope| {
        for w in 0..jobs {
            let pool = &pool;
            scope.spawn(move || pool.work(w, builder, outer_cancel, extra));
        }
    });
    pool.forward_traces();
    merge_satisfaction(pool, ctx.split_pruned, ctx.split_depth, jobs, ctx.t0)
}

/// Satisfaction EPS: decompose, drain with `jobs` workers, return the
/// lexicographically-first solution (identical to a sequential
/// [`solve`] whenever nothing times out — see the module docs).
///
/// The builder's `SearchConfig` supplies phases, budgets and an optional
/// *outer* cancellation token (checked between subproblems; each
/// subproblem additionally runs under its own pool-managed token). Its
/// `timeout` is interpreted as a **global** wall-clock budget for the
/// whole EPS pass: each claimed subproblem runs with the remaining time,
/// and once the deadline passes the rest are recorded as `Unknown`.
pub fn eps_solve(builder: &EpsBuilder<'_>, eps: &EpsConfig) -> (SearchResult, EpsReport) {
    let t0 = Instant::now();
    let (mut split_model, cfg) = builder();
    let empty_report = |n, d, p| EpsReport {
        subproblems: n,
        split_depth: d,
        split_pruned: p,
        winner: None,
        outcomes: Vec::new(),
        workers: vec![WorkerStats::default(); eps.jobs.max(1)],
    };
    if split_model.engine.fixpoint(&mut split_model.store).is_err() {
        let mut r = refuted_at_replay();
        r.stats.time = t0.elapsed();
        return (r, empty_report(0, 0, 1));
    }
    let target = eps.split_factor.max(1) * eps.jobs.max(1);
    let (subs, split_pruned, split_depth) = split(&mut split_model, &cfg, target, eps);
    drop(split_model);
    if subs.is_empty() {
        // Every branch refuted during decomposition: a complete proof.
        let mut r = refuted_at_replay();
        r.stats.time = t0.elapsed();
        return (r, empty_report(0, split_depth, split_pruned));
    }
    run_satisfaction_pool(
        builder,
        &subs,
        eps,
        cfg.cancel.as_ref(),
        &[],
        PassCtx {
            split_pruned,
            split_depth,
            t0,
            deadline: cfg.timeout.map(|t| t0 + t),
        },
    )
}

/// Minimization EPS in two passes.
///
/// **Pass A** drains the subproblems with branch-and-bound under a shared
/// [`AtomicI32`] incumbent (the portfolio's mechanism): the optimum
/// *value* this yields is deterministic, because the subproblem holding
/// the global optimum can only ever be pruned by an equal-valued
/// incumbent. **Pass B** re-runs a satisfaction EPS with `obj ≤ v*`
/// appended to every prefix, so the returned *witness* is the
/// lexicographically-first optimal solution — again run-invariant.
pub fn eps_minimize(
    builder: &(dyn Fn() -> (Model, VarId, SearchConfig) + Sync),
    eps: &EpsConfig,
) -> (SearchResult, EpsReport) {
    let t0 = Instant::now();
    let (mut split_model, _obj, cfg) = builder();
    let sat_builder = |bound: Option<i32>| {
        move || {
            let (mut m, o, mut c) = builder();
            if let Some(b) = bound {
                let _ = m.store.remove_above(o, b);
            }
            c.shared_bound = None;
            (m, c)
        }
    };
    if split_model.engine.fixpoint(&mut split_model.store).is_err() {
        let mut r = refuted_at_replay();
        r.stats.time = t0.elapsed();
        let report = EpsReport {
            subproblems: 0,
            split_depth: 0,
            split_pruned: 1,
            winner: None,
            outcomes: Vec::new(),
            workers: vec![WorkerStats::default(); eps.jobs.max(1)],
        };
        return (r, report);
    }
    let target = eps.split_factor.max(1) * eps.jobs.max(1);
    let (subs, split_pruned, split_depth) = split(&mut split_model, &cfg, target, eps);
    drop(split_model);
    if subs.is_empty() {
        let mut r = refuted_at_replay();
        r.stats.time = t0.elapsed();
        let report = EpsReport {
            subproblems: 0,
            split_depth,
            split_pruned,
            winner: None,
            outcomes: Vec::new(),
            workers: vec![WorkerStats::default(); eps.jobs.max(1)],
        };
        return (r, report);
    }

    // Pass A: bound discovery under a shared incumbent. The builder's
    // `timeout` is a global budget for the whole minimization (both
    // passes), enforced by handing each subproblem only the remainder.
    let deadline = cfg.timeout.map(|t| t0 + t);
    let shared = Arc::new(AtomicI32::new(i32::MAX));
    let jobs = eps.jobs.max(1);
    let next = AtomicUsize::new(0);
    let pass_a: Mutex<Vec<(usize, SearchResult)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            let shared = Arc::clone(&shared);
            let next = &next;
            let pass_a = &pass_a;
            let subs = &subs;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= subs.len() {
                    return;
                }
                let remaining = deadline.map(|dl| dl.saturating_duration_since(Instant::now()));
                if remaining.is_some_and(|r| r.is_zero()) {
                    let mut r = refuted_at_replay();
                    r.status = SearchStatus::Unknown;
                    r.completed = false;
                    pass_a
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push((i, r));
                    continue;
                }
                let (mut model, o, mut c) = builder();
                c.shared_bound = Some(Arc::clone(&shared));
                // Pass A explores under a timing-dependent shared
                // incumbent; its streams are inherently nondeterministic
                // and are not traced. Pass B (the canonical witness pass)
                // carries the trace.
                c.trace = None;
                if let Some(rem) = remaining {
                    c.timeout = Some(c.timeout.map_or(rem, |t| t.min(rem)));
                }
                let r = if replay(&mut model, &subs[i]) {
                    minimize(&mut model, o, &c)
                } else {
                    refuted_at_replay()
                };
                pass_a
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push((i, r));
            });
        }
    });
    let mut a = pass_a.into_inner().unwrap_or_else(|e| e.into_inner());
    a.sort_by_key(|(i, _)| *i);
    let all_complete = a.iter().all(|(_, r)| r.completed);
    let mut a_stats = SearchStats::default();
    for (_, r) in &a {
        a_stats.nodes += r.stats.nodes;
        a_stats.fails += r.stats.fails;
        a_stats.propagations += r.stats.propagations;
        a_stats.max_depth = a_stats.max_depth.max(r.stats.max_depth);
    }
    let best = a.iter().filter_map(|(_, r)| r.objective).min();
    let Some(vstar) = best else {
        let mut r = refuted_at_replay();
        if !all_complete {
            r.status = SearchStatus::Unknown;
            r.completed = false;
        }
        r.stats = a_stats;
        r.stats.time = t0.elapsed();
        let report = EpsReport {
            subproblems: subs.len(),
            split_depth,
            split_pruned,
            winner: None,
            outcomes: Vec::new(),
            workers: vec![WorkerStats::default(); jobs],
        };
        return (r, report);
    };

    // Pass B: deterministic witness under obj ≤ v*.
    let b_builder = sat_builder(Some(vstar));
    let (mut result, mut report) = run_satisfaction_pool(
        &b_builder,
        &subs,
        eps,
        cfg.cancel.as_ref(),
        &[],
        PassCtx {
            split_pruned,
            split_depth,
            t0,
            deadline,
        },
    );
    result.objective = Some(vstar);
    // Pass A's tree exhaustion is the optimality proof; pass B stops at
    // the first witness.
    if result.is_sat() {
        result.status = if all_complete {
            SearchStatus::Optimal
        } else {
            SearchStatus::Feasible
        };
        result.completed = all_complete;
    }
    result.stats.nodes += a_stats.nodes;
    result.stats.fails += a_stats.fails;
    result.stats.propagations += a_stats.propagations;
    result.stats.max_depth = result.stats.max_depth.max(a_stats.max_depth);
    result.stats.time = t0.elapsed();
    report.subproblems = subs.len();
    (result, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::alldiff::AllDifferent;
    use crate::props::basic::{MaxOf, NeqOffset, XPlusCLeqY};
    use crate::search::{Phase, VarSel};

    fn queens_builder(n: usize) -> impl Fn() -> (Model, SearchConfig) + Sync {
        move || {
            let mut m = Model::new();
            let cols: Vec<VarId> = (0..n).map(|_| m.new_var(0, n as i32 - 1)).collect();
            m.post(Box::new(AllDifferent::new(cols.clone())));
            for i in 0..n {
                for j in (i + 1)..n {
                    let d = (j - i) as i32;
                    m.post(Box::new(NeqOffset {
                        x: cols[i],
                        y: cols[j],
                        c: d,
                    }));
                    m.post(Box::new(NeqOffset {
                        x: cols[i],
                        y: cols[j],
                        c: -d,
                    }));
                }
            }
            let cfg = SearchConfig {
                phases: vec![Phase::new(cols, VarSel::InputOrder, ValSel::Min)],
                ..Default::default()
            };
            (m, cfg)
        }
    }

    #[test]
    fn eps_matches_sequential_first_solution() {
        for n in [6, 8] {
            let builder = queens_builder(n);
            let (mut m, cfg) = builder();
            let seq = solve(&mut m, &cfg);
            let (par, report) = eps_solve(&builder, &EpsConfig::default());
            assert_eq!(par.status, SearchStatus::Optimal, "n={n}");
            assert!(report.subproblems > 1, "n={n}: should actually decompose");
            let s = seq.best.unwrap();
            let p = par.best.unwrap();
            for i in 0..n as u32 {
                assert_eq!(s.value(VarId(i)), p.value(VarId(i)), "n={n} var {i}");
            }
        }
    }

    #[test]
    fn eps_proves_infeasibility() {
        // 3 queens has no solution.
        let builder = queens_builder(3);
        let (r, _) = eps_solve(&builder, &EpsConfig::default());
        assert_eq!(r.status, SearchStatus::Infeasible);
        assert!(r.completed);
    }

    #[test]
    fn eps_is_deterministic_across_runs_and_job_counts() {
        let builder = queens_builder(8);
        let mut seen: Option<Vec<i32>> = None;
        for jobs in [1, 2, 4, 7] {
            let eps = EpsConfig {
                jobs,
                ..Default::default()
            };
            let (r, _) = eps_solve(&builder, &eps);
            let sol = r.best.expect("8 queens is satisfiable");
            let vals: Vec<i32> = (0..8).map(|i| sol.value(VarId(i))).collect();
            match &seen {
                None => seen = Some(vals),
                Some(prev) => assert_eq!(prev, &vals, "jobs={jobs}"),
            }
        }
    }

    #[test]
    fn eps_minimize_matches_sequential_optimum_and_witness() {
        let builder = || {
            let mut m = Model::new();
            let starts: Vec<VarId> = (0..5).map(|_| m.new_var(0, 20)).collect();
            for w in starts.windows(2) {
                m.post(Box::new(XPlusCLeqY {
                    x: w[0],
                    c: 2,
                    y: w[1],
                }));
            }
            let obj = m.new_var(0, 25);
            m.post(Box::new(MaxOf {
                xs: starts.clone(),
                y: obj,
            }));
            let cfg = SearchConfig {
                phases: vec![Phase::new(starts, VarSel::SmallestMin, ValSel::Min)],
                ..Default::default()
            };
            (m, obj, cfg)
        };
        let (mut m, obj, cfg) = builder();
        let seq = minimize(&mut m, obj, &cfg);
        let (par, _) = eps_minimize(&builder, &EpsConfig::default());
        assert_eq!(par.objective, seq.objective);
        assert_eq!(par.status, SearchStatus::Optimal);
        assert!(par.is_sat());
    }

    #[test]
    fn race_mode_returns_a_genuine_solution() {
        // Racing gives up the lexicographic-witness guarantee, never the
        // soundness one: whatever wins must satisfy every constraint,
        // which we check by replaying the assignment on a fresh model.
        let builder = queens_builder(8);
        let eps = EpsConfig {
            jobs: 4,
            race: true,
            ..Default::default()
        };
        let (r, _) = eps_solve(&builder, &eps);
        let sol = r.best.expect("8 queens is satisfiable");
        let (mut m, _) = builder();
        for i in 0..8u32 {
            assert!(
                m.store.fix(VarId(i), sol.value(VarId(i))).is_ok(),
                "value for var {i} out of domain"
            );
        }
        assert!(
            m.engine.fixpoint(&mut m.store).is_ok(),
            "raced witness violates a constraint"
        );
    }

    #[test]
    fn traced_eps_streams_are_deterministic_and_tagged() {
        // The decomposition targets split_factor × jobs subproblems, so a
        // fixed *target* (not a fixed jobs count) pins the subproblem set;
        // within one decomposition the merged trace must not depend on
        // worker count or scheduling.
        let run = |jobs: usize, split_factor: usize| {
            let sink = Arc::new(Mutex::new(MemorySink::unbounded()));
            let handle = TraceHandle::new(Arc::clone(&sink));
            let base = queens_builder(6);
            let builder = move || {
                let (m, mut cfg) = base();
                cfg.trace = Some(handle.clone());
                (m, cfg)
            };
            let eps = EpsConfig {
                jobs,
                split_factor,
                ..Default::default()
            };
            let (r, report) = eps_solve(&builder, &eps);
            assert!(r.is_sat());
            let events: Vec<SearchEvent> = sink.lock().unwrap().events.iter().cloned().collect();
            (report.winner.unwrap(), events)
        };
        let (w1, e1) = run(4, 30); // target 120
        let (w4, e4) = run(2, 60); // target 120, different worker count
        let (w2, e2) = run(4, 30); // identical rerun
        assert_eq!(w1, w4);
        assert_eq!(w1, w2);
        assert_eq!(e1, e4, "merged EPS trace depends on the worker count");
        assert_eq!(e1, e2, "merged EPS trace differs between identical runs");
        // Every subproblem up to and including the winner contributes one
        // tagged stream, in index order; nothing beyond the winner leaks.
        let ids: Vec<u32> = e1
            .iter()
            .filter_map(|e| match e {
                SearchEvent::Stream { id } => Some(*id),
                _ => None,
            })
            .collect();
        assert_eq!(ids, (0..=w1 as u32).collect::<Vec<_>>());
    }

    #[test]
    fn subproblems_partition_lexicographically() {
        // Splitting must preserve DFS value order at every level.
        let builder = queens_builder(6);
        let (mut m, cfg) = builder();
        assert!(m.engine.fixpoint(&mut m.store).is_ok());
        let eps = EpsConfig::default();
        let (subs, _, depth) = split(&mut m, &cfg, 8, &eps);
        assert!(depth >= 1);
        assert!(subs.len() >= 8);
        // First decisions are non-decreasing in value along the list for
        // the first branching variable (Min order).
        let firsts: Vec<i32> = subs
            .iter()
            .filter_map(|s| match s.decisions.first() {
                Some(Decision::Fix(_, v)) => Some(*v),
                _ => None,
            })
            .collect();
        let mut sorted = firsts.clone();
        sorted.sort();
        assert_eq!(firsts, sorted);
    }
}
