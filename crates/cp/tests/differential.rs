//! Differential testing of the solver against brute force: random small
//! CSPs are solved both by exhaustive enumeration and by the CP search;
//! the outcomes (satisfiability, optimal objective) must agree exactly.
//!
//! This is the strongest correctness evidence a solver can have short of
//! proofs: any unsound propagator (pruning a value that belongs to a
//! solution) or incomplete search shows up as a disagreement.

use eit_cp::props::alldiff::AllDifferent;
use eit_cp::props::basic::{NeqOffset, XPlusCEqY, XPlusCLeqY};
use eit_cp::props::cumulative::{CumTask, Cumulative};
use eit_cp::props::diff2::{Diff2, Rect};
use eit_cp::props::disjunctive::{DisjTask, Disjunctive};
use eit_cp::props::linear::LinearLeq;
use eit_cp::props::table::Table;
use eit_cp::{minimize, solve, Model, Phase, SearchConfig, SearchStatus, ValSel, VarId, VarSel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A declarative constraint we can both post and brute-force-check.
#[derive(Clone, Debug)]
enum C {
    Neq(usize, usize),
    Leq(usize, i32, usize),         // x + c ≤ y
    EqOff(usize, i32, usize),       // y = x + c
    LinLeq(Vec<(i64, usize)>, i64), // Σ aᵢxᵢ ≤ c
    Cumulative(Vec<(usize, i32, i32)>, i32),
    Disjunctive(Vec<(usize, i32)>),
    Diff2(Vec<(usize, usize, i32, i32)>), // (x, y, w, h) fixed extents
    AllDiff(Vec<usize>),
    Table(Vec<usize>, Vec<Vec<i32>>),
}

fn check(c: &C, a: &[i32]) -> bool {
    match c {
        C::Neq(x, y) => a[*x] != a[*y],
        C::Leq(x, k, y) => a[*x] + k <= a[*y],
        C::EqOff(x, k, y) => a[*y] == a[*x] + k,
        C::LinLeq(terms, k) => terms.iter().map(|&(co, v)| co * a[v] as i64).sum::<i64>() <= *k,
        C::Cumulative(tasks, cap) => {
            let lo = tasks.iter().map(|&(v, _, _)| a[v]).min().unwrap_or(0);
            let hi = tasks.iter().map(|&(v, d, _)| a[v] + d).max().unwrap_or(0);
            (lo..hi).all(|t| {
                tasks
                    .iter()
                    .filter(|&&(v, d, _)| a[v] <= t && t < a[v] + d)
                    .map(|&(_, _, r)| r)
                    .sum::<i32>()
                    <= *cap
            })
        }
        C::Disjunctive(tasks) => {
            for (i, &(v1, d1)) in tasks.iter().enumerate() {
                for &(v2, d2) in &tasks[i + 1..] {
                    if a[v1] < a[v2] + d2 && a[v2] < a[v1] + d1 {
                        return false;
                    }
                }
            }
            true
        }
        C::Diff2(rects) => {
            for (i, &(x1, y1, w1, h1)) in rects.iter().enumerate() {
                for &(x2, y2, w2, h2) in &rects[i + 1..] {
                    let x_overlap = a[x1] < a[x2] + w2 && a[x2] < a[x1] + w1;
                    let y_overlap = a[y1] < a[y2] + h2 && a[y2] < a[y1] + h1;
                    if x_overlap && y_overlap {
                        return false;
                    }
                }
            }
            true
        }
        C::AllDiff(vs) => {
            for (i, &x) in vs.iter().enumerate() {
                for &y in &vs[i + 1..] {
                    if a[x] == a[y] {
                        return false;
                    }
                }
            }
            true
        }
        C::Table(vs, tuples) => tuples
            .iter()
            .any(|t| t.iter().zip(vs).all(|(&tv, &v)| a[v] == tv)),
    }
}

fn post(c: &C, m: &mut Model, vars: &[VarId]) {
    match c {
        C::Neq(x, y) => {
            m.post(Box::new(NeqOffset {
                x: vars[*x],
                y: vars[*y],
                c: 0,
            }));
        }
        C::Leq(x, k, y) => {
            m.post(Box::new(XPlusCLeqY {
                x: vars[*x],
                c: *k,
                y: vars[*y],
            }));
        }
        C::EqOff(x, k, y) => {
            m.post(Box::new(XPlusCEqY {
                x: vars[*x],
                c: *k,
                y: vars[*y],
            }));
        }
        C::LinLeq(terms, k) => {
            let t = terms.iter().map(|&(co, v)| (co, vars[v])).collect();
            m.post(Box::new(LinearLeq::new(t, *k)));
        }
        C::Cumulative(tasks, cap) => {
            let t = tasks
                .iter()
                .map(|&(v, d, r)| CumTask {
                    start: vars[v],
                    dur: d,
                    req: r,
                })
                .collect();
            m.post(Box::new(Cumulative::new(t, *cap)));
        }
        C::Disjunctive(tasks) => {
            let t = tasks
                .iter()
                .map(|&(v, d)| DisjTask {
                    start: vars[v],
                    dur: d,
                })
                .collect();
            m.post(Box::new(Disjunctive::new(t)));
        }
        C::Diff2(rects) => {
            let r = rects
                .iter()
                .map(|&(x, y, w, h)| {
                    let wl = m.new_const(w);
                    let hl = m.new_const(h);
                    Rect {
                        origin: [vars[x], vars[y]],
                        len: [wl, hl],
                    }
                })
                .collect();
            m.post(Box::new(Diff2::new(r)));
        }
        C::AllDiff(vs) => {
            let v = vs.iter().map(|&i| vars[i]).collect();
            m.post(Box::new(AllDifferent::new(v)));
        }
        C::Table(vs, tuples) => {
            let v = vs.iter().map(|&i| vars[i]).collect();
            m.post(Box::new(Table::new(v, tuples.clone())));
        }
    }
}

/// Enumerate all assignments over `n` vars with domain `0..=hi`; return
/// (any satisfying assignment exists, minimal objective value of
/// `max(vars)` over satisfying assignments).
fn brute_force(n: usize, hi: i32, cs: &[C]) -> (bool, Option<i32>) {
    let mut a = vec![0i32; n];
    let mut sat = false;
    let mut best: Option<i32> = None;
    loop {
        if cs.iter().all(|c| check(c, &a)) {
            sat = true;
            let obj = *a.iter().max().unwrap();
            best = Some(best.map_or(obj, |b: i32| b.min(obj)));
        }
        // Odometer.
        let mut i = 0;
        loop {
            if i == n {
                return (sat, best);
            }
            a[i] += 1;
            if a[i] > hi {
                a[i] = 0;
                i += 1;
            } else {
                break;
            }
        }
    }
}

fn random_instance(rng: &mut StdRng, n: usize, hi: i32) -> Vec<C> {
    let mut cs = Vec::new();
    let n_cons = rng.gen_range(1..5);
    for _ in 0..n_cons {
        let c = match rng.gen_range(0..9) {
            0 => C::Neq(rng.gen_range(0..n), rng.gen_range(0..n)),
            1 => C::Leq(
                rng.gen_range(0..n),
                rng.gen_range(-2..3),
                rng.gen_range(0..n),
            ),
            2 => C::EqOff(
                rng.gen_range(0..n),
                rng.gen_range(-2..3),
                rng.gen_range(0..n),
            ),
            3 => {
                let k = rng.gen_range(1..=n);
                let terms = (0..k)
                    .map(|_| (rng.gen_range(-2i64..3), rng.gen_range(0..n)))
                    .collect();
                C::LinLeq(terms, rng.gen_range(-3i64..10))
            }
            4 => {
                let k = rng.gen_range(2..=n);
                let tasks = (0..k)
                    .map(|_| {
                        (
                            rng.gen_range(0..n),
                            rng.gen_range(1..3),
                            rng.gen_range(1..3),
                        )
                    })
                    .collect();
                C::Cumulative(tasks, rng.gen_range(1..4))
            }
            5 => {
                let k = rng.gen_range(2..=n);
                let tasks = (0..k)
                    .map(|_| (rng.gen_range(0..n), rng.gen_range(1..3)))
                    .collect();
                C::Disjunctive(tasks)
            }
            6 => {
                let k = rng.gen_range(2..=n.min(3));
                let rects = (0..k)
                    .map(|_| {
                        (
                            rng.gen_range(0..n),
                            rng.gen_range(0..n),
                            rng.gen_range(1..3),
                            rng.gen_range(1..3),
                        )
                    })
                    .collect();
                C::Diff2(rects)
            }
            7 => {
                let k = rng.gen_range(2..=n);
                let mut vs: Vec<usize> = (0..n).collect();
                for i in (1..vs.len()).rev() {
                    vs.swap(i, rng.gen_range(0..=i));
                }
                vs.truncate(k);
                C::AllDiff(vs)
            }
            _ => {
                let arity = rng.gen_range(1..=n.min(3));
                let vs: Vec<usize> = (0..arity).map(|_| rng.gen_range(0..n)).collect();
                let n_tuples = rng.gen_range(1..6);
                let tuples = (0..n_tuples)
                    .map(|_| (0..arity).map(|_| rng.gen_range(0..=hi)).collect())
                    .collect();
                C::Table(vs, tuples)
            }
        };
        // Drop degenerate self-referencing binary constraints.
        let degenerate = matches!(
            &c,
            C::Neq(x, y) | C::Leq(x, _, y) | C::EqOff(x, _, y) if x == y
        );
        if !degenerate {
            cs.push(c);
        }
        let _ = hi;
    }
    cs
}

fn solver_instance(n: usize, hi: i32, cs: &[C], minimize_obj: bool) -> (bool, Option<i32>) {
    let mut m = Model::new();
    let vars: Vec<VarId> = (0..n).map(|_| m.new_var(0, hi)).collect();
    for c in cs {
        post(c, &mut m, &vars);
    }
    let cfg = SearchConfig {
        phases: vec![Phase::new(vars.clone(), VarSel::FirstFail, ValSel::Min)],
        ..Default::default()
    };
    if minimize_obj {
        let obj = m.new_var(0, hi);
        m.max_of(vars.clone(), obj);
        let r = minimize(&mut m, obj, &cfg);
        (r.best.is_some(), r.objective)
    } else {
        let r = solve(&mut m, &cfg);
        (r.status == SearchStatus::Optimal && r.best.is_some(), None)
    }
}

/// Minimize `max(vars)` under `cs` with either engine configuration;
/// returns the optimum, the values of the best solution's decision vars,
/// and the search-effort counters.
fn minimize_with_engine(
    n: usize,
    hi: i32,
    cs: &[C],
    fifo: bool,
) -> (Option<i32>, Option<Vec<i32>>, u64, u64, u64) {
    let mut m = if fifo {
        Model::with_fifo_baseline()
    } else {
        Model::new()
    };
    let vars: Vec<VarId> = (0..n).map(|_| m.new_var(0, hi)).collect();
    for c in cs {
        post(c, &mut m, &vars);
    }
    let obj = m.new_var(0, hi);
    m.max_of(vars.clone(), obj);
    let cfg = SearchConfig {
        phases: vec![Phase::new(vars.clone(), VarSel::FirstFail, ValSel::Min)],
        ..Default::default()
    };
    let r = minimize(&mut m, obj, &cfg);
    let best = r
        .best
        .as_ref()
        .map(|sol| vars.iter().map(|&v| sol.value(v)).collect());
    (
        r.objective,
        best,
        r.stats.nodes,
        r.stats.fails,
        r.stats.propagations,
    )
}

/// The tentpole's equivalence guarantee: the event-driven engine explores
/// the same search tree as the single-queue FIFO baseline — identical
/// optima and identical incumbent solutions — while doing no more search
/// work.
///
/// Propagator-invocation counts are deliberately *not* compared here: on
/// tiny dense instances the tiered scheduler re-runs cheap arithmetic
/// propagators per event where FIFO batches events while a propagator
/// waits in the queue, so the totals can go either way. The ≥20%
/// invocation reduction the event engine is built for shows up on the
/// structured scheduling models (`eitc qrd --profile` vs `--fifo`) and
/// is pinned by the solver benchmarks, not by this micro-CSP suite.
#[test]
fn event_engine_agrees_with_fifo_baseline() {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    for case in 0..300 {
        let n = rng.gen_range(2..5);
        let hi = rng.gen_range(2..5);
        let cs = random_instance(&mut rng, n, hi);
        let (ev_obj, ev_best, ev_nodes, ev_fails, _) = minimize_with_engine(n, hi, &cs, false);
        let (ff_obj, ff_best, ff_nodes, ff_fails, _) = minimize_with_engine(n, hi, &cs, true);
        assert_eq!(ev_obj, ff_obj, "case {case}: optimum differs: {cs:?}");
        assert_eq!(ev_best, ff_best, "case {case}: incumbent differs: {cs:?}");
        assert!(
            ev_nodes <= ff_nodes,
            "case {case}: event engine explored more nodes ({ev_nodes} > {ff_nodes}): {cs:?}"
        );
        assert!(
            ev_fails <= ff_fails,
            "case {case}: event engine failed more ({ev_fails} > {ff_fails}): {cs:?}"
        );
    }
}

/// Complete enumeration must produce the identical solution *set* under
/// both engines — not just the same optimum.
#[test]
fn event_engine_enumerates_the_same_solutions_as_fifo() {
    use eit_cp::solve_all;
    let mut rng = StdRng::seed_from_u64(0xE7E7);
    for case in 0..150 {
        let n = rng.gen_range(2..4);
        let hi = rng.gen_range(2..4);
        let cs = random_instance(&mut rng, n, hi);
        let mut sets = Vec::new();
        for fifo in [false, true] {
            let mut m = if fifo {
                Model::with_fifo_baseline()
            } else {
                Model::new()
            };
            let vars: Vec<VarId> = (0..n).map(|_| m.new_var(0, hi)).collect();
            for c in &cs {
                post(c, &mut m, &vars);
            }
            let cfg = SearchConfig {
                phases: vec![Phase::new(vars.clone(), VarSel::InputOrder, ValSel::Min)],
                ..Default::default()
            };
            let (_, sols) = solve_all(&mut m, &cfg, 10_000);
            let keys: Vec<Vec<i32>> = sols
                .iter()
                .map(|s| vars.iter().map(|&v| s.value(v)).collect())
                .collect();
            sets.push(keys);
        }
        // Identical search order ⇒ identical enumeration order, so compare
        // without sorting: order differences are themselves a regression.
        assert_eq!(sets[0], sets[1], "case {case}: {cs:?}");
    }
}

#[test]
fn satisfiability_agrees_with_brute_force() {
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    for case in 0..300 {
        let n = rng.gen_range(2..5);
        let hi = rng.gen_range(2..5);
        let cs = random_instance(&mut rng, n, hi);
        let (bf_sat, _) = brute_force(n, hi, &cs);
        let (cp_sat, _) = solver_instance(n, hi, &cs, false);
        assert_eq!(bf_sat, cp_sat, "case {case}: {cs:?}");
    }
}

#[test]
fn optimal_objective_agrees_with_brute_force() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for case in 0..300 {
        let n = rng.gen_range(2..5);
        let hi = rng.gen_range(2..5);
        let cs = random_instance(&mut rng, n, hi);
        let (_, bf_best) = brute_force(n, hi, &cs);
        let (_, cp_best) = solver_instance(n, hi, &cs, true);
        assert_eq!(bf_best, cp_best, "case {case}: {cs:?}");
    }
}

#[test]
fn restart_bnb_agrees_with_brute_force() {
    let mut rng = StdRng::seed_from_u64(0xCAFE);
    for case in 0..200 {
        let n = rng.gen_range(2..5);
        let hi = rng.gen_range(2..5);
        let cs = random_instance(&mut rng, n, hi);
        let (_, bf_best) = brute_force(n, hi, &cs);

        let mut m = Model::new();
        let vars: Vec<VarId> = (0..n).map(|_| m.new_var(0, hi)).collect();
        for c in &cs {
            post(c, &mut m, &vars);
        }
        let obj = m.new_var(0, hi);
        m.max_of(vars.clone(), obj);
        let cfg = SearchConfig {
            phases: vec![Phase::new(vars, VarSel::SmallestMin, ValSel::Min)],
            restart_on_solution: true,
            ..Default::default()
        };
        let r = minimize(&mut m, obj, &cfg);
        assert_eq!(bf_best, r.objective, "case {case}: {cs:?}");
    }
}

/// Minimize `max(vars)` under `cs` with an explicit restart policy and
/// domain representation; returns the optimum plus the full stats block
/// so callers can check the policy actually fired.
fn minimize_configured(
    n: usize,
    hi: i32,
    cs: &[C],
    restarts: Option<eit_cp::RestartConfig>,
    bitset: bool,
) -> (Option<i32>, Option<Vec<i32>>, eit_cp::SearchStats) {
    let mut m = Model::new();
    m.store.set_bitset(bitset);
    let vars: Vec<VarId> = (0..n).map(|_| m.new_var(0, hi)).collect();
    for c in cs {
        post(c, &mut m, &vars);
    }
    let obj = m.new_var(0, hi);
    m.max_of(vars.clone(), obj);
    let cfg = SearchConfig {
        phases: vec![Phase::new(vars.clone(), VarSel::FirstFail, ValSel::Min)],
        restarts,
        ..Default::default()
    };
    let r = minimize(&mut m, obj, &cfg);
    let best = r
        .best
        .as_ref()
        .map(|sol| vars.iter().map(|&v| sol.value(v)).collect());
    (r.objective, best, r.stats)
}

/// Restarted search with nogood recording is a different *trajectory*
/// through the same space — the optimum it proves must still be the
/// brute-force optimum, for every policy shape we ship.
#[test]
fn restarted_nogood_search_agrees_with_brute_force() {
    use eit_cp::{RestartConfig, RestartPolicy};
    let policies = [
        RestartConfig {
            policy: RestartPolicy::Geometric {
                base: 2,
                factor_percent: 150,
            },
            nogoods: true,
        },
        RestartConfig {
            policy: RestartPolicy::Geometric {
                base: 2,
                factor_percent: 150,
            },
            nogoods: false,
        },
        RestartConfig {
            policy: RestartPolicy::Luby { unit: 1 },
            nogoods: true,
        },
    ];
    let mut rng = StdRng::seed_from_u64(0x9060);
    let mut total_restarts = 0u64;
    let mut total_nogoods = 0u64;
    for case in 0..150 {
        let n = rng.gen_range(2..5);
        let hi = rng.gen_range(2..5);
        let cs = random_instance(&mut rng, n, hi);
        let (_, bf_best) = brute_force(n, hi, &cs);
        for rc in policies {
            let (obj, _, stats) = minimize_configured(n, hi, &cs, Some(rc), true);
            assert_eq!(bf_best, obj, "case {case} policy {rc:?}: {cs:?}");
            total_restarts += stats.restarts;
            total_nogoods += stats.nogoods_posted;
        }
    }
    // The suite must actually exercise the machinery, not just configure it.
    assert!(total_restarts > 100, "only {total_restarts} restarts fired");
    assert!(total_nogoods > 100, "only {total_nogoods} nogoods recorded");
}

/// The hybrid bitset representation is a pure speed change: pinned
/// interval-list domains and bitset domains must drive the *identical*
/// search — same optimum, same incumbent, same node/fail/propagation
/// counts — with and without restarts layered on top.
#[test]
fn bitset_and_interval_domains_are_search_equivalent() {
    let mut rng = StdRng::seed_from_u64(0xB175E7);
    for case in 0..150 {
        let n = rng.gen_range(2..5);
        let hi = rng.gen_range(2..5);
        let cs = random_instance(&mut rng, n, hi);
        for restarts in [
            None,
            Some(eit_cp::RestartConfig {
                policy: eit_cp::RestartPolicy::Geometric {
                    base: 2,
                    factor_percent: 150,
                },
                nogoods: true,
            }),
        ] {
            let (obj_b, best_b, st_b) = minimize_configured(n, hi, &cs, restarts, true);
            let (obj_i, best_i, st_i) = minimize_configured(n, hi, &cs, restarts, false);
            assert_eq!(obj_b, obj_i, "case {case} restarts={restarts:?}: {cs:?}");
            assert_eq!(best_b, best_i, "case {case} restarts={restarts:?}: {cs:?}");
            assert_eq!(
                (st_b.nodes, st_b.fails, st_b.propagations),
                (st_i.nodes, st_i.fails, st_i.propagations),
                "case {case} restarts={restarts:?}: search effort diverged: {cs:?}"
            );
        }
    }
}

/// Op-level differential across the representation boundary, including
/// the i32 edges where offset arithmetic can wrap: a bitset store and a
/// pinned interval store fed the identical op stream must agree on every
/// observable (bounds, size, membership, success/failure) at every step.
#[test]
fn domain_ops_agree_across_representations_at_extreme_bounds() {
    use eit_cp::Store;
    let windows: &[(i32, i32)] = &[
        (i32::MIN, i32::MIN + 100),
        (i32::MAX - 100, i32::MAX),
        (i32::MIN, i32::MIN + 500), // wide: stays interval in both stores
        (-64, 64),
        (-3, 130),
    ];
    let mut rng = StdRng::seed_from_u64(0xED6E);
    for case in 0..200 {
        let mut bits = Store::new();
        let mut ivs = Store::new();
        ivs.set_bitset(false);
        let (lo, hi) = windows[rng.gen_range(0..windows.len())];
        let lo = lo.saturating_add(rng.gen_range(0..8));
        let hi = hi.saturating_sub(rng.gen_range(0..8));
        let vb = bits.new_var(lo, hi);
        let vi = ivs.new_var(lo, hi);
        for step in 0..60 {
            // Probe a value near the current bounds (i64 so the ±2 slack
            // can't overflow at the i32 edges).
            let pick = |r: &mut StdRng, s: &Store, v: VarId| -> i32 {
                let (mn, mx) = (s.min(v) as i64, s.max(v) as i64);
                r.gen_range(mn - 2..=mx + 2)
                    .clamp(i32::MIN as i64, i32::MAX as i64) as i32
            };
            let val = pick(&mut rng, &bits, vb);
            let op = rng.gen_range(0..5);
            if op == 4 && bits.depth() > 0 && rng.gen_bool(0.5) {
                bits.pop_level();
                ivs.pop_level();
            } else if op == 4 {
                bits.push_level();
                ivs.push_level();
            } else {
                let rb = match op {
                    0 => bits.remove_value(vb, val),
                    1 => bits.remove_below(vb, val),
                    2 => bits.remove_above(vb, val),
                    _ => bits.fix(vb, val),
                };
                let ri = match op {
                    0 => ivs.remove_value(vi, val),
                    1 => ivs.remove_below(vi, val),
                    2 => ivs.remove_above(vi, val),
                    _ => ivs.fix(vi, val),
                };
                assert_eq!(
                    rb.is_err(),
                    ri.is_err(),
                    "case {case} step {step}: op {op} val {val} disagreed on failure"
                );
                if rb.is_err() {
                    break;
                }
            }
            assert_eq!(bits.min(vb), ivs.min(vi), "case {case} step {step}");
            assert_eq!(bits.max(vb), ivs.max(vi), "case {case} step {step}");
            assert_eq!(bits.size(vb), ivs.size(vi), "case {case} step {step}");
            for _ in 0..8 {
                let p = pick(&mut rng, &bits, vb);
                assert_eq!(
                    bits.dom(vb).contains(p),
                    ivs.dom(vi).contains(p),
                    "case {case} step {step}: membership of {p} diverged"
                );
            }
        }
    }
}

/// Test double for the parallel II sweep's cancellation path: a propagator
/// that cancels its token after a fixed number of wakes, planting the
/// cancellation *inside* a propagation fixpoint mid-search — exactly where
/// a winning neighbour probe would land it.
struct CancelAfter {
    token: eit_cp::CancelToken,
    vars: Vec<VarId>,
    countdown: u64,
}

impl eit_cp::Propagator for CancelAfter {
    fn subscribe(&self, subs: &mut eit_cp::Subscriptions) {
        for &v in &self.vars {
            subs.watch(v, eit_cp::DomainEvent::ANY);
        }
    }

    fn propagate(
        &mut self,
        _store: &mut eit_cp::Store,
        _wake: &eit_cp::Wake<'_>,
    ) -> eit_cp::PropResult {
        if self.countdown > 0 {
            self.countdown -= 1;
            if self.countdown == 0 {
                self.token.cancel();
            }
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "cancel-after"
    }
}

/// A probe aborted mid-fixpoint must leave no poisoned state behind: the
/// trail unwinds to the root, and re-running the search on the *same*
/// model instance reproduces the sequential optimum and incumbent. This
/// is the invariant the speculative II sweep leans on when it hands a
/// cancelled model back (or drops it) after a lower II wins.
#[test]
fn cancellation_mid_fixpoint_leaves_no_poisoned_state() {
    let mut rng = StdRng::seed_from_u64(0xCA9CE1);
    let mut exercised = 0u32;
    for _ in 0..120 {
        let n = rng.gen_range(3..6);
        let hi = rng.gen_range(2..5);
        let cs = random_instance(&mut rng, n, hi);
        let (reference, reference_best, ..) = minimize_with_engine(n, hi, &cs, false);

        // Same model, but with a countdown propagator that cancels the
        // run partway through, then a clean re-solve on that same model.
        for countdown in [1u64, 5, 20] {
            let token = eit_cp::CancelToken::new();
            let mut m = Model::new();
            let vars: Vec<VarId> = (0..n).map(|_| m.new_var(0, hi)).collect();
            for c in &cs {
                post(c, &mut m, &vars);
            }
            let obj = m.new_var(0, hi);
            m.max_of(vars.clone(), obj);
            m.post(Box::new(CancelAfter {
                token: token.clone(),
                vars: vars.clone(),
                countdown,
            }));
            let cfg = SearchConfig {
                phases: vec![Phase::new(vars.clone(), VarSel::FirstFail, ValSel::Min)],
                cancel: Some(token.clone()),
                ..Default::default()
            };
            let r1 = minimize(&mut m, obj, &cfg);
            if r1.cancelled {
                exercised += 1;
                // A cancelled run must never claim a completed search.
                assert_ne!(r1.status, SearchStatus::Optimal);
                assert_ne!(r1.status, SearchStatus::Infeasible);
            }

            // Re-solve the same model with the cancellation disarmed: the
            // trail must have unwound so the second run sees the root
            // store (plus only confluent root propagation) and lands on
            // the sequential optimum.
            let cfg2 = SearchConfig {
                phases: vec![Phase::new(vars.clone(), VarSel::FirstFail, ValSel::Min)],
                ..Default::default()
            };
            let r2 = minimize(&mut m, obj, &cfg2);
            assert_eq!(r2.objective, reference, "countdown={countdown} cs={cs:?}");
            let best2: Option<Vec<i32>> = r2
                .best
                .as_ref()
                .map(|sol| vars.iter().map(|&v| sol.value(v)).collect());
            assert_eq!(best2, reference_best, "countdown={countdown} cs={cs:?}");
        }
    }
    // The loop must actually have exercised mid-search cancellation, not
    // just armed tokens that never fired before the search finished.
    assert!(exercised > 50, "only {exercised} cancelled runs");
}
