//! Tracing contract tests: a fixed CSP must produce the *identical*
//! event stream on every run (events carry no timestamps), the stream's
//! counts must agree with `SearchStats`, and the null sink must observe
//! exactly the same solver trajectory as no sink at all.

use eit_cp::props::basic::{MaxOf, NeqOffset};
use eit_cp::trace::{MemorySink, NullSink, SearchEvent, TraceHandle};
use eit_cp::{
    minimize, solve, Model, Phase, SearchConfig, SearchResult, SearchStatus, ValSel, VarId, VarSel,
};
use std::sync::{Arc, Mutex};

/// A small but non-trivial BnB instance: color 5 mutually-different vars,
/// minimize the max.
fn build() -> (Model, VarId, Vec<VarId>) {
    let mut m = Model::new();
    let vars: Vec<VarId> = (0..5).map(|_| m.new_var(0, 6)).collect();
    for i in 0..vars.len() {
        for j in (i + 1)..vars.len() {
            m.post(Box::new(NeqOffset {
                x: vars[i],
                y: vars[j],
                c: 0,
            }));
        }
    }
    let obj = m.new_var(0, 6);
    m.post(Box::new(MaxOf {
        xs: vars.clone(),
        y: obj,
    }));
    (m, obj, vars)
}

fn traced_run(val_sel: ValSel, restart: bool) -> (SearchResult, Vec<SearchEvent>) {
    let (mut m, obj, vars) = build();
    let sink = Arc::new(Mutex::new(MemorySink::unbounded()));
    let cfg = SearchConfig {
        phases: vec![Phase::new(vars, VarSel::FirstFail, val_sel)],
        restart_on_solution: restart,
        trace: Some(TraceHandle::new(Arc::clone(&sink))),
        ..Default::default()
    };
    let r = minimize(&mut m, obj, &cfg);
    let events = sink.lock().unwrap().events.iter().cloned().collect();
    (r, events)
}

#[test]
fn event_stream_is_deterministic_across_runs() {
    for val_sel in [ValSel::Min, ValSel::Max, ValSel::Split] {
        for restart in [false, true] {
            let (r1, e1) = traced_run(val_sel, restart);
            let (r2, e2) = traced_run(val_sel, restart);
            assert_eq!(r1.objective, r2.objective);
            assert!(!e1.is_empty());
            assert_eq!(e1, e2, "stream differs for {val_sel:?} restart={restart}");
        }
    }
}

#[test]
fn event_counts_agree_with_search_stats() {
    let (r, events) = traced_run(ValSel::Min, true);
    assert_eq!(r.status, SearchStatus::Optimal);
    let count = |k: &str| events.iter().filter(|e| e.kind() == k).count() as u64;
    assert_eq!(count("start"), 1);
    assert_eq!(count("done"), 1);
    assert_eq!(count("fail"), r.stats.fails);
    assert_eq!(count("solution"), r.stats.solutions);
    // Every solution of a minimization updates the incumbent bound.
    assert_eq!(count("bound"), r.stats.solutions);
    // Every backtrack closes a level some branch opened (fails at node
    // entry — bound pruning — contribute fails without branches, so
    // branch and fail counts are not otherwise related).
    assert!(count("backtrack") <= count("branch"));
    assert!(count("branch") > 0);
    // The final event is the Done record carrying the exit status.
    match events.last().unwrap() {
        SearchEvent::Done {
            status,
            nodes,
            fails,
            solutions,
        } => {
            assert_eq!(*status, "optimal");
            assert_eq!(*nodes, r.stats.nodes);
            assert_eq!(*fails, r.stats.fails);
            assert_eq!(*solutions, r.stats.solutions);
        }
        other => panic!("expected Done last, got {other:?}"),
    }
}

#[test]
fn null_sink_does_not_change_the_search() {
    let (mut plain_model, obj, vars) = build();
    let plain_cfg = SearchConfig {
        phases: vec![Phase::new(vars.clone(), VarSel::FirstFail, ValSel::Min)],
        restart_on_solution: true,
        ..Default::default()
    };
    let plain = minimize(&mut plain_model, obj, &plain_cfg);

    let (mut traced_model, obj2, vars2) = build();
    let traced_cfg = SearchConfig {
        phases: vec![Phase::new(vars2, VarSel::FirstFail, ValSel::Min)],
        restart_on_solution: true,
        trace: Some(TraceHandle::new(NullSink)),
        ..Default::default()
    };
    let traced = minimize(&mut traced_model, obj2, &traced_cfg);

    assert_eq!(plain.objective, traced.objective);
    assert_eq!(plain.stats.nodes, traced.stats.nodes);
    assert_eq!(plain.stats.fails, traced.stats.fails);
    assert_eq!(plain.stats.propagations, traced.stats.propagations);
    let _ = vars;
}

#[test]
fn satisfaction_search_traces_without_objective() {
    let mut m = Model::new();
    let x = m.new_var(0, 3);
    let y = m.new_var(0, 3);
    m.post(Box::new(NeqOffset { x, y, c: 0 }));
    let sink = Arc::new(Mutex::new(MemorySink::unbounded()));
    let cfg = SearchConfig {
        phases: vec![Phase::new(vec![x, y], VarSel::InputOrder, ValSel::Min)],
        trace: Some(TraceHandle::new(Arc::clone(&sink))),
        ..Default::default()
    };
    let r = solve(&mut m, &cfg);
    assert!(r.is_sat());
    let sink = sink.lock().unwrap();
    assert_eq!(sink.counts.solutions, 1);
    assert_eq!(sink.counts.bounds, 0, "no objective, no bound updates");
    assert!(sink.events.iter().any(|e| matches!(
        e,
        SearchEvent::Solution {
            objective: None,
            ..
        }
    )));
}

#[test]
fn node_limit_abort_is_traced() {
    let (mut m, obj, vars) = build();
    let sink = Arc::new(Mutex::new(MemorySink::unbounded()));
    let cfg = SearchConfig {
        phases: vec![Phase::new(vars, VarSel::FirstFail, ValSel::Min)],
        node_limit: Some(3),
        trace: Some(TraceHandle::new(Arc::clone(&sink))),
        ..Default::default()
    };
    let _ = minimize(&mut m, obj, &cfg);
    let sink = sink.lock().unwrap();
    assert_eq!(sink.counts.node_limits, 1);
}

/// Every `SearchEvent` variant — both `Solution` objective shapes and
/// all terminal events included — survives the JSONL writer → parser
/// round trip unchanged.
#[test]
fn jsonl_roundtrip_covers_every_variant() {
    let all = vec![
        SearchEvent::Start {
            vars: 7,
            propagators: 12,
        },
        SearchEvent::Branch {
            depth: 3,
            var: 4,
            val: -2,
        },
        SearchEvent::Fail { depth: 2 },
        SearchEvent::Backtrack { depth: 1 },
        SearchEvent::Solution {
            objective: Some(-9),
            nodes: 41,
        },
        SearchEvent::Solution {
            objective: None,
            nodes: 42,
        },
        SearchEvent::BoundUpdate { bound: 5 },
        SearchEvent::Restart { bound: 4 },
        SearchEvent::DeadlineHit { nodes: 100 },
        SearchEvent::NodeLimitHit { nodes: 200 },
        SearchEvent::Cancelled { nodes: 300 },
        SearchEvent::StateHash {
            nodes: 64,
            hash: 0xdead_beef_0123_4567,
        },
        SearchEvent::Stream { id: 11 },
        SearchEvent::Done {
            status: "optimal",
            nodes: 99,
            fails: 55,
            solutions: 3,
        },
        SearchEvent::Done {
            status: "infeasible",
            nodes: 1,
            fails: 1,
            solutions: 0,
        },
        SearchEvent::Done {
            status: "feasible",
            nodes: 9,
            fails: 2,
            solutions: 1,
        },
        SearchEvent::Done {
            status: "unknown",
            nodes: 0,
            fails: 0,
            solutions: 0,
        },
    ];
    for e in &all {
        let line = e.to_json();
        let back = SearchEvent::from_json(&line)
            .unwrap_or_else(|| panic!("unparseable JSONL line: {line}"));
        assert_eq!(&back, e, "round trip changed {line}");
        // And the round trip is a fixpoint.
        assert_eq!(back.to_json(), line);
    }
    // Garbage is rejected, not misparsed.
    for bad in [
        "",
        "{}",
        "{\"event\":\"branch\",\"depth\":1}",
        "{\"event\":\"nope\"}",
        "not json at all",
    ] {
        assert!(
            SearchEvent::from_json(bad).is_none(),
            "accepted garbage: {bad:?}"
        );
    }
}

/// A real solver stream round-trips line by line — the writer and the
/// parser agree on everything the solver actually emits.
#[test]
fn solver_stream_roundtrips_through_jsonl() {
    let (mut m, obj, vars) = build();
    let sink = Arc::new(Mutex::new(MemorySink::unbounded()));
    let cfg = SearchConfig {
        phases: vec![Phase::new(vars, VarSel::FirstFail, ValSel::Min)],
        trace: Some(TraceHandle::new(Arc::clone(&sink))),
        state_hash_every: Some(2),
        restart_on_solution: true,
        ..Default::default()
    };
    let _ = minimize(&mut m, obj, &cfg);
    let sink = sink.lock().unwrap();
    assert!(!sink.events.is_empty());
    for e in &sink.events {
        let line = e.to_json();
        assert_eq!(SearchEvent::from_json(&line).as_ref(), Some(e));
    }
}
