//! Model-based testing of the backtracking store: a random sequence of
//! push/pop/mutate operations is applied both to the real [`Store`] and
//! to a reference implementation that snapshots full domain copies at
//! every push. The domains must agree after every step.
//!
//! This is the test that would have caught the save-stamp bug (a var
//! saved at a popped child level was not re-saved when its *parent*
//! level mutated it) on day one.

use eit_cp::{Domain, Store, VarId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Reference store: full snapshots, obviously correct.
struct RefStore {
    domains: Vec<BTreeSet<i32>>,
    snapshots: Vec<Vec<BTreeSet<i32>>>,
}

impl RefStore {
    fn new(n: usize, lo: i32, hi: i32) -> Self {
        RefStore {
            domains: vec![(lo..=hi).collect(); n],
            snapshots: Vec::new(),
        }
    }

    fn push(&mut self) {
        self.snapshots.push(self.domains.clone());
    }

    fn pop(&mut self) {
        self.domains = self.snapshots.pop().expect("pop at root");
    }
}

#[derive(Debug)]
enum Op {
    Push,
    Pop,
    RemoveBelow(usize, i32),
    RemoveAbove(usize, i32),
    RemoveValue(usize, i32),
    Fix(usize, i32),
}

fn random_op(rng: &mut StdRng, n: usize, lo: i32, hi: i32, depth: usize) -> Op {
    match rng.gen_range(0..10) {
        0 | 1 => Op::Push,
        2 | 3 if depth > 0 => Op::Pop,
        4 | 5 => Op::RemoveBelow(rng.gen_range(0..n), rng.gen_range(lo..=hi)),
        6 | 7 => Op::RemoveAbove(rng.gen_range(0..n), rng.gen_range(lo..=hi)),
        8 => Op::RemoveValue(rng.gen_range(0..n), rng.gen_range(lo..=hi)),
        _ => Op::Fix(rng.gen_range(0..n), rng.gen_range(lo..=hi)),
    }
}

fn agree(store: &Store, rf: &RefStore, vars: &[VarId]) -> bool {
    vars.iter().enumerate().all(|(i, &v)| {
        let got: BTreeSet<i32> = store.dom(v).iter().collect();
        got == rf.domains[i]
    })
}

#[test]
fn store_matches_snapshot_reference_over_random_traces() {
    let (lo, hi) = (0, 15);
    for seed in 0..200u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(1..5);
        let mut store = Store::new();
        let vars: Vec<VarId> = (0..n).map(|_| store.new_var(lo, hi)).collect();
        let mut rf = RefStore::new(n, lo, hi);
        let mut depth = 0usize;

        for step in 0..120 {
            // Mutations at the root are permanent in the real store; keep
            // the trace inside at least one level so both models agree on
            // pop semantics, by forcing an initial push.
            if step == 0 {
                store.push_level();
                rf.push();
                depth += 1;
                continue;
            }
            let op = random_op(&mut rng, n, lo, hi, depth);
            match op {
                Op::Push => {
                    store.push_level();
                    rf.push();
                    depth += 1;
                }
                Op::Pop => {
                    if depth > 1 {
                        store.pop_level();
                        rf.pop();
                        depth -= 1;
                    }
                }
                Op::RemoveBelow(i, v) => {
                    let r = store.remove_below(vars[i], v);
                    rf.domains[i].retain(|&x| x >= v);
                    assert_eq!(
                        r.is_err(),
                        rf.domains[i].is_empty(),
                        "seed {seed} step {step}"
                    );
                }
                Op::RemoveAbove(i, v) => {
                    let r = store.remove_above(vars[i], v);
                    rf.domains[i].retain(|&x| x <= v);
                    assert_eq!(
                        r.is_err(),
                        rf.domains[i].is_empty(),
                        "seed {seed} step {step}"
                    );
                }
                Op::RemoveValue(i, v) => {
                    let r = store.remove_value(vars[i], v);
                    rf.domains[i].remove(&v);
                    assert_eq!(
                        r.is_err(),
                        rf.domains[i].is_empty(),
                        "seed {seed} step {step}"
                    );
                }
                Op::Fix(i, v) => {
                    let was_member = rf.domains[i].contains(&v);
                    let r = store.fix(vars[i], v);
                    if was_member {
                        rf.domains[i] = std::iter::once(v).collect();
                        assert!(r.is_ok(), "seed {seed} step {step}");
                    } else {
                        // Real store refuses without mutating.
                        assert!(r.is_err(), "seed {seed} step {step}");
                    }
                }
            }
            // After any failure (empty domain) the search would backtrack;
            // emulate by popping one level to keep both models in sync.
            if rf.domains.iter().any(|d| d.is_empty()) {
                store.pop_level();
                rf.pop();
                depth -= 1;
                if depth == 0 {
                    store.push_level();
                    rf.push();
                    depth = 1;
                }
            }
            assert!(
                agree(&store, &rf, &vars),
                "seed {seed} step {step}: domains diverged"
            );
        }
    }
}

#[test]
fn deep_nesting_unwinds_exactly() {
    let mut store = Store::new();
    let x = store.new_var(0, 1000);
    let mut expected = vec![(0, 1000)];
    for d in 1..=50 {
        store.push_level();
        store.remove_below(x, d * 3).unwrap();
        store.remove_above(x, 1000 - d * 2).unwrap();
        expected.push((d * 3, 1000 - d * 2));
    }
    for d in (0..50).rev() {
        store.pop_level();
        let (lo, hi) = expected[d as usize];
        assert_eq!((store.min(x), store.max(x)), (lo, hi), "depth {d}");
    }
}

#[test]
fn interleaved_vars_restore_independently() {
    let mut store = Store::new();
    let a = store.new_var(0, 9);
    let b = store.new_var(0, 9);
    store.push_level();
    store.remove_below(a, 5).unwrap();
    store.push_level();
    store.remove_above(b, 3).unwrap();
    store.pop_level();
    // Mutate `a` again at the outer level after the inner pop — the
    // original regression scenario.
    store.remove_below(a, 7).unwrap();
    assert_eq!(store.max(b), 9);
    store.pop_level();
    assert_eq!(store.min(a), 0);
    assert_eq!(store.max(b), 9);
    let _ = Domain::interval(0, 1); // keep the import honest
}
